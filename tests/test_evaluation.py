"""Unit tests for :mod:`repro.core.evaluation` (vectorised evaluation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ComparatorNetwork,
    all_binary_words,
    all_binary_words_array,
    apply_network_to_batch,
    array_to_words,
    batch_is_sorted,
    evaluate_on_all_binary_inputs,
    min_word_dtype,
    outputs_on_words,
    unsorted_binary_words_array,
    words_to_array,
)
from repro.exceptions import InputLengthError


class TestWordEnumeration:
    def test_all_binary_words_count_and_order(self):
        words = list(all_binary_words(3))
        assert len(words) == 8
        assert words[0] == (0, 0, 0)
        assert words[-1] == (1, 1, 1)
        assert words[5] == (1, 0, 1)

    def test_array_agrees_with_generator(self):
        for n in range(0, 6):
            array = all_binary_words_array(n)
            assert array.shape == (2**n, n)
            assert [tuple(int(v) for v in row) for row in array] == list(
                all_binary_words(n)
            )

    def test_unsorted_words_array_size(self):
        for n in range(1, 8):
            assert unsorted_binary_words_array(n).shape[0] == 2**n - n - 1

    def test_batch_is_sorted(self):
        batch = np.array([[0, 1, 1], [1, 0, 1], [0, 0, 0], [1, 1, 0]])
        assert batch_is_sorted(batch).tolist() == [True, False, True, False]

    def test_batch_is_sorted_single_column(self):
        assert batch_is_sorted(np.array([[0], [1]])).tolist() == [True, True]


class TestBatchApplication:
    def test_batch_matches_scalar(self, four_sorter):
        inputs = all_binary_words_array(4)
        outputs = apply_network_to_batch(four_sorter, inputs)
        for row_in, row_out in zip(inputs, outputs):
            assert tuple(int(v) for v in row_out) == four_sorter.apply(
                tuple(int(v) for v in row_in)
            )

    def test_batch_does_not_modify_input_by_default(self, four_sorter):
        inputs = all_binary_words_array(4)
        original = inputs.copy()
        apply_network_to_batch(four_sorter, inputs)
        assert np.array_equal(inputs, original)

    def test_batch_in_place(self, four_sorter):
        inputs = all_binary_words_array(4)
        out = apply_network_to_batch(four_sorter, inputs, copy=False)
        assert out is inputs

    def test_batch_wrong_width_raises(self, four_sorter):
        with pytest.raises(InputLengthError):
            apply_network_to_batch(four_sorter, np.zeros((3, 5), dtype=np.int8))

    def test_batch_wrong_ndim_raises(self, four_sorter):
        with pytest.raises(InputLengthError):
            apply_network_to_batch(four_sorter, np.zeros(4, dtype=np.int8))

    def test_empty_batch(self, four_sorter):
        out = apply_network_to_batch(four_sorter, np.zeros((0, 4), dtype=np.int8))
        assert out.shape == (0, 4)

    def test_evaluate_on_all_binary_inputs_sorter(self, batcher8):
        outputs = evaluate_on_all_binary_inputs(batcher8)
        assert bool(np.all(batch_is_sorted(outputs)))

    def test_reversed_comparators_in_batch(self):
        from repro.core import Comparator

        net = ComparatorNetwork(2, [Comparator(0, 1, reversed=True)])
        outputs = apply_network_to_batch(net, all_binary_words_array(2))
        assert [tuple(int(v) for v in row) for row in outputs] == [
            (0, 0),
            (1, 0),
            (1, 0),
            (1, 1),
        ]

    def test_outputs_on_words_infers_dtype_for_permutations(self, four_sorter):
        outputs = outputs_on_words(four_sorter, [(3, 2, 1, 0), (0, 3, 2, 1)])
        assert outputs.dtype == np.int64
        assert tuple(outputs[0]) == (0, 1, 2, 3)

    def test_outputs_on_words_empty(self, four_sorter):
        assert outputs_on_words(four_sorter, []).shape == (0, 4)


class TestConversionHelpers:
    def test_words_to_array_and_back(self):
        words = [(0, 1, 0), (1, 1, 0)]
        array = words_to_array(words)
        assert array.shape == (2, 3)
        assert array_to_words(array) == words

    def test_words_to_array_empty(self):
        assert words_to_array([]).shape == (0, 0)

    def test_words_to_array_empty_with_hint_keeps_width(self):
        array = words_to_array([], n_lines=5)
        assert array.shape == (0, 5)

    def test_words_to_array_hint_validates_width(self):
        with pytest.raises(InputLengthError):
            words_to_array([(0, 1)], n_lines=5)

    def test_empty_batch_flows_through_evaluation(self, four_sorter):
        """Regression: an empty word list used to collapse to shape (0, 0)
        and make apply_network_to_batch raise a misleading InputLengthError
        ("0 columns"); with the hint it returns an empty result."""
        batch = words_to_array([], n_lines=four_sorter.n_lines)
        out = apply_network_to_batch(four_sorter, batch)
        assert out.shape == (0, 4)

    def test_min_word_dtype(self):
        assert min_word_dtype([(0, 1, 1)]) is np.int8
        assert min_word_dtype([]) is np.int8
        assert min_word_dtype([(0, 2)]) is np.int64
        assert min_word_dtype([(200, 0)]) is np.int64
        assert min_word_dtype([(-500, 1)]) is np.int64
