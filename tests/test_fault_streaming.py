"""Streamed cube-axis fault simulation and dominated-state pruning.

The load-bearing guarantee of this PR: the pruned, streamed and 2-D-sharded
fault simulators are *bit-identical* to the serial unpruned engines — across
random networks (including reversed comparators), both detection criteria,
odd chunk sizes and the (faults × vector-chunks) work grid.  Hypothesis
drives the serial cross-checks (cheap); a small number of deterministic
tests exercise the real process pools.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
import numpy as np
import pytest
from strategies import criteria, networks, odd_chunks

from repro.constructions import batcher_sorting_network
from repro.core.evaluation import all_binary_words_array, unsorted_binary_words_array
from repro.exceptions import FaultModelError
from repro.faults import (
    CubeVectors,
    SimulationStats,
    coverage_report,
    enumerate_single_faults,
    fault_detection_any,
    fault_detection_matrix,
)
from repro.parallel import ExecutionConfig, grid_tiles


# ----------------------------------------------------------------------
# Pruned vs unpruned vs serial reference: bit-identical
# ----------------------------------------------------------------------
@given(networks(), criteria, odd_chunks)
@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_pruned_and_streamed_matrices_match_serial(network, criterion, chunk):
    """The satellite guarantee: pruned == unpruned == vectorised, serial and
    streamed, on random networks, both criteria, odd chunk sizes."""
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    vectors = all_binary_words_array(network.n_lines)
    reference = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="vectorized"
    )
    unpruned = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="bitpacked",
        prune=False,
    )
    pruned = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="bitpacked",
        prune=True,
    )
    assert np.array_equal(unpruned, reference)
    assert np.array_equal(pruned, reference)
    config = ExecutionConfig(max_workers=1, chunk_size=chunk)
    for prune in (False, True):
        streamed = fault_detection_matrix(
            network, faults, CubeVectors(network.n_lines),
            criterion=criterion, engine="bitpacked", config=config, prune=prune,
        )
        assert np.array_equal(streamed, reference)
        detected = fault_detection_any(
            network, faults, CubeVectors(network.n_lines),
            criterion=criterion, engine="bitpacked", config=config, prune=prune,
        )
        assert np.array_equal(detected, reference.any(axis=1))


@given(networks(min_lines=3), criteria, odd_chunks)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_streamed_explicit_vectors_match(network, criterion, chunk):
    """Explicit vector batches stream in word chunks, matrix and any-form."""
    faults = enumerate_single_faults(network)
    vectors = unsorted_binary_words_array(network.n_lines)
    if vectors.shape[0] == 0:
        return
    reference = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="vectorized"
    )
    config = ExecutionConfig(max_workers=1, chunk_size=chunk)
    streamed = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="bitpacked",
        config=config,
    )
    assert np.array_equal(streamed, reference)
    detected = fault_detection_any(
        network, faults, vectors, criterion=criterion, engine="bitpacked",
        config=config,
    )
    assert np.array_equal(detected, reference.any(axis=1))


def test_cube_vectors_equivalent_to_explicit_cube():
    """CubeVectors(n) is column-for-column the explicit cube array."""
    network = batcher_sorting_network(6)
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    explicit = fault_detection_matrix(
        network, faults, all_binary_words_array(6), engine="bitpacked"
    )
    lazy = fault_detection_matrix(
        network, faults, CubeVectors(6), engine="bitpacked"
    )
    assert np.array_equal(lazy, explicit)
    # Non-bit-packed engines expand the cube and agree as well.
    assert np.array_equal(
        fault_detection_matrix(network, faults, CubeVectors(6), engine="vectorized"),
        explicit,
    )


def test_cube_vectors_validation():
    with pytest.raises(FaultModelError):
        CubeVectors(-1)
    network = batcher_sorting_network(4)
    faults = enumerate_single_faults(network)
    with pytest.raises(FaultModelError):
        fault_detection_matrix(network, faults, CubeVectors(5), engine="bitpacked")
    assert len(CubeVectors(10)) == 1024


# ----------------------------------------------------------------------
# The 2-D (faults × vector-chunks) shard grid
# ----------------------------------------------------------------------
def test_grid_tiles_cover_every_fault_chunk_pair():
    assert grid_tiles(0, 4, 2) == []
    assert grid_tiles(5, 0, 2) == []
    for num_faults, num_chunks, workers in ((7, 3, 2), (100, 1, 4), (5, 9, 3)):
        tiles = grid_tiles(num_faults, num_chunks, workers)
        seen = set()
        for chunk_index, start, stop in tiles:
            assert 0 <= chunk_index < num_chunks
            for f in range(start, stop):
                key = (chunk_index, f)
                assert key not in seen
                seen.add(key)
        assert len(seen) == num_faults * num_chunks
        # Chunk-major order: workers reuse their cached chunk prefixes.
        chunk_order = [tile[0] for tile in tiles]
        assert chunk_order == sorted(chunk_order)


@pytest.mark.parametrize("criterion", ["specification", "reference"])
@pytest.mark.parametrize("prune", [False, True])
def test_grid_sharded_matrix_is_bit_identical(criterion, prune):
    """Real process pool over the 2-D grid: cube chunks × fault slices."""
    network = batcher_sorting_network(7)
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    reference = fault_detection_matrix(
        network, faults, all_binary_words_array(7), criterion=criterion,
        engine="vectorized",
    )
    config = ExecutionConfig(max_workers=2, chunk_size=48)
    stats = SimulationStats()
    grid = fault_detection_matrix(
        network, faults, CubeVectors(7), criterion=criterion,
        engine="bitpacked", config=config, prune=prune, stats=stats,
    )
    assert np.array_equal(grid, reference)
    if prune:
        assert stats.faults > 0
    detected = fault_detection_any(
        network, faults, CubeVectors(7), criterion=criterion,
        engine="bitpacked", config=config, prune=prune,
    )
    assert np.array_equal(detected, reference.any(axis=1))


def test_grid_sharded_explicit_vectors():
    """Explicit batches above the chunk size stream through the grid too."""
    network = batcher_sorting_network(7)
    faults = enumerate_single_faults(network)
    vectors = all_binary_words_array(7)
    reference = fault_detection_matrix(network, faults, vectors, engine="vectorized")
    config = ExecutionConfig(max_workers=2, chunk_size=32)
    assert config.wants_vector_chunking(vectors.shape[0])
    grid = fault_detection_matrix(
        network, faults, vectors, engine="bitpacked", config=config
    )
    assert np.array_equal(grid, reference)
    tuples = [tuple(int(v) for v in row) for row in vectors]
    grid_tuples = fault_detection_matrix(
        network, faults, tuples, engine="bitpacked", config=config
    )
    assert np.array_equal(grid_tuples, reference)


def test_wants_vector_chunking_thresholds():
    assert not ExecutionConfig().wants_vector_chunking(10**9)
    assert ExecutionConfig(chunk_size=64).wants_vector_chunking(65)
    assert not ExecutionConfig(chunk_size=64).wants_vector_chunking(64)
    assert ExecutionConfig(max_workers=2).wants_vector_chunking(2**21)


# ----------------------------------------------------------------------
# Pruning counters
# ----------------------------------------------------------------------
def test_prune_counter_monotone_in_network_size():
    """Regression: pruned stage-blocks grow with the device size — a larger
    sorter exposes strictly more dominated suffix work, so a counter
    regression (e.g. skipped accounting) shows up as non-monotonicity."""
    previous = -1
    for n in (4, 6, 8, 10):
        network = batcher_sorting_network(n)
        faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
        stats = SimulationStats()
        fault_detection_matrix(
            network, faults, all_binary_words_array(n), engine="bitpacked",
            prune=True, stats=stats,
        )
        assert stats.pruned_stage_blocks > previous
        assert stats.total_stage_blocks == (
            stats.evaluated_stage_blocks + stats.pruned_stage_blocks
        )
        assert 0.0 < stats.prune_ratio < 1.0
        assert stats.faults == len(faults)
        previous = stats.pruned_stage_blocks


def test_fault_dropping_counts_and_identical_verdicts():
    """Later chunks drop already-detected faults without changing verdicts."""
    network = batcher_sorting_network(8)
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    config = ExecutionConfig(chunk_size=64)  # 4 chunks at n=8
    stats = SimulationStats()
    detected = fault_detection_any(
        network, faults, CubeVectors(8), engine="bitpacked", config=config,
        prune=True, stats=stats,
    )
    reference = fault_detection_any(
        network, faults, CubeVectors(8), engine="bitpacked", config=config,
        prune=False,
    )
    assert np.array_equal(detected, reference)
    assert stats.dropped_faults > 0


def test_stats_merge_counts_roundtrip():
    a = SimulationStats(faults=2, converged_faults=1, dropped_faults=3,
                        evaluated_stage_blocks=10, pruned_stage_blocks=30)
    b = SimulationStats()
    b.merge_counts(a.counts())
    assert b == a
    assert a.prune_ratio == 0.75


# ----------------------------------------------------------------------
# Coverage helpers on the streamed cube
# ----------------------------------------------------------------------
def test_coverage_report_on_cube_matches_explicit():
    network = batcher_sorting_network(6)
    faults = enumerate_single_faults(network)
    explicit = coverage_report(
        network, faults, all_binary_words_array(6), engine="bitpacked"
    )
    streamed = coverage_report(
        network, faults, CubeVectors(6), engine="bitpacked",
        config=ExecutionConfig(chunk_size=16),
    )
    assert streamed.coverage == explicit.coverage
    assert streamed.detected_faults == explicit.detected_faults
    assert streamed.by_kind == explicit.by_kind
    assert streamed.vectors_used == 64
