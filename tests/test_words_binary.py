"""Unit tests for :mod:`repro.words.binary`."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import NotBinaryError
from repro.words import (
    all_binary_words,
    binary_words_with_weight,
    binary_words_with_zero_count,
    check_binary,
    complement_reverse,
    count_ones,
    count_zeros,
    dominated_words,
    dominates,
    dominating_words,
    hamming_distance,
    is_binary,
    is_one_transposition_from_sorted,
    is_sorted_word,
    sort_word,
    sorted_binary_words,
    support,
    transposition_distance_to_sorted,
    unsorted_binary_words,
    word_from_rank,
    word_from_zero_positions,
    word_rank,
    zero_positions,
)


class TestValidation:
    def test_check_binary_accepts_binary(self):
        assert check_binary([0, 1, 1]) == (0, 1, 1)

    def test_check_binary_rejects_other_values(self):
        with pytest.raises(NotBinaryError):
            check_binary((0, 2, 1))

    def test_is_binary(self):
        assert is_binary((0, 1, 0))
        assert not is_binary((0, 3))


class TestSortednessAndCounts:
    def test_is_sorted_word(self):
        assert is_sorted_word((0, 0, 1, 1))
        assert not is_sorted_word((0, 1, 0))
        assert is_sorted_word(())
        assert is_sorted_word((1,))

    def test_sort_word(self):
        assert sort_word((1, 0, 1, 0)) == (0, 0, 1, 1)

    def test_counts_match_paper_notation(self):
        word = (0, 1, 1, 0, 1)
        assert count_zeros(word) == 2
        assert count_ones(word) == 3

    def test_sorted_words_enumeration(self):
        assert sorted_binary_words(3) == [
            (0, 0, 0),
            (0, 0, 1),
            (0, 1, 1),
            (1, 1, 1),
        ]

    def test_unsorted_words_count_matches_theorem(self):
        for n in range(1, 10):
            assert len(unsorted_binary_words(n)) == 2**n - n - 1

    def test_words_with_weight(self):
        words = binary_words_with_weight(4, 2)
        assert len(words) == math.comb(4, 2)
        assert all(count_ones(w) == 2 for w in words)

    def test_words_with_zero_count(self):
        words = binary_words_with_zero_count(5, 1)
        assert len(words) == 5
        assert all(count_zeros(w) == 1 for w in words)

    def test_weight_out_of_range_gives_empty(self):
        assert binary_words_with_weight(3, 5) == []


class TestRanking:
    def test_rank_round_trip(self):
        for n in range(1, 7):
            for rank in range(2**n):
                assert word_rank(word_from_rank(n, rank)) == rank

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            word_from_rank(3, 8)


class TestDominance:
    def test_dominates_basic(self):
        assert dominates((0, 0, 1), (0, 1, 1))
        assert not dominates((1, 0, 0), (0, 1, 1))

    def test_dominates_requires_equal_length(self):
        with pytest.raises(ValueError):
            dominates((0, 1), (0, 1, 1))

    def test_dominated_words_count(self):
        word = (1, 0, 1, 1)
        assert len(dominated_words(word)) == 2 ** count_ones(word)
        assert all(dominates(w, word) for w in dominated_words(word))

    def test_dominating_words_count(self):
        word = (1, 0, 0, 1)
        assert len(dominating_words(word)) == 2 ** count_zeros(word)
        assert all(dominates(word, w) for w in dominating_words(word))


class TestComplementReverse:
    def test_example(self):
        assert complement_reverse((1, 0, 0)) == (1, 1, 0)

    def test_involution(self):
        for word in all_binary_words(5):
            assert complement_reverse(complement_reverse(word)) == word

    def test_preserves_sortedness(self):
        for word in all_binary_words(5):
            assert is_sorted_word(word) == is_sorted_word(complement_reverse(word))


class TestDistances:
    def test_hamming(self):
        assert hamming_distance((0, 1, 1), (1, 1, 0)) == 2
        with pytest.raises(ValueError):
            hamming_distance((0, 1), (0, 1, 1))

    def test_transposition_distance_examples(self):
        assert transposition_distance_to_sorted((0, 0, 1, 1)) == 0
        assert transposition_distance_to_sorted((1, 0, 0, 1)) == 1
        assert transposition_distance_to_sorted((1, 1, 0, 0)) == 2

    def test_one_transposition_predicate(self):
        assert is_one_transposition_from_sorted((0, 1, 0, 1))
        assert not is_one_transposition_from_sorted((0, 0, 1, 1))
        assert not is_one_transposition_from_sorted((1, 1, 0, 0))


class TestPositions:
    def test_support_and_zero_positions_partition(self):
        word = (1, 0, 0, 1, 1)
        assert support(word) == (0, 3, 4)
        assert zero_positions(word) == (1, 2)

    def test_word_from_zero_positions(self):
        assert word_from_zero_positions(4, [1, 3]) == (1, 0, 1, 0)

    def test_word_from_zero_positions_out_of_range(self):
        with pytest.raises(ValueError):
            word_from_zero_positions(3, [3])
