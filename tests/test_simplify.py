"""Unit tests for behavioural equivalence and redundant-comparator removal."""

from __future__ import annotations

from repro.constructions import (
    batcher_sorting_network,
    bubble_sorting_network,
    optimal_sorting_network,
)
from repro.core import (
    ComparatorNetwork,
    active_comparator_counts,
    comparator_is_redundant,
    networks_equivalent,
    redundant_comparator_indices,
    remove_redundant_comparators,
)
from repro.faults import StuckPassFault, enumerate_single_faults, fault_coverage
from repro.properties import is_sorter
from repro.testsets import sorting_binary_test_set


class TestEquivalence:
    def test_network_is_equivalent_to_itself(self, batcher8):
        assert networks_equivalent(batcher8, batcher8)

    def test_different_sorters_are_equivalent(self):
        assert networks_equivalent(batcher_sorting_network(5), bubble_sorting_network(5))
        assert networks_equivalent(optimal_sorting_network(6), batcher_sorting_network(6))

    def test_sorter_and_non_sorter_are_not_equivalent(self, four_sorter, non_sorter_4):
        assert not networks_equivalent(four_sorter, non_sorter_4)

    def test_different_widths_are_not_equivalent(self):
        assert not networks_equivalent(
            ComparatorNetwork.identity(3), ComparatorNetwork.identity(4)
        )

    def test_duplicate_comparator_is_equivalent_to_single(self):
        once = ComparatorNetwork.from_pairs(3, [(0, 1)])
        twice = ComparatorNetwork.from_pairs(3, [(0, 1), (0, 1)])
        assert networks_equivalent(once, twice)


class TestRedundancy:
    def test_duplicated_comparator_is_redundant(self):
        net = ComparatorNetwork.from_pairs(3, [(0, 1), (0, 1), (1, 2)])
        assert comparator_is_redundant(net, 1)
        assert comparator_is_redundant(net, 0)  # either copy can go
        assert not comparator_is_redundant(net, 2)

    def test_optimal_networks_have_no_redundancy(self):
        for n in range(2, 8):
            assert redundant_comparator_indices(optimal_sorting_network(n)) == []

    def test_batcher_networks_have_no_redundancy(self):
        for n in (4, 6, 8):
            assert redundant_comparator_indices(batcher_sorting_network(n)) == []

    def test_comparators_after_a_full_sorter_are_redundant(self):
        sorter = batcher_sorting_network(5)
        padded = sorter.extended([(0, 1), (2, 4)])
        indices = redundant_comparator_indices(padded)
        assert sorter.size in indices and sorter.size + 1 in indices

    def test_active_counts_flag_never_swapping_comparators(self):
        sorter = batcher_sorting_network(4)
        padded = sorter.extended([(0, 3)])
        counts = active_comparator_counts(padded)
        assert counts[-1] == 0
        assert all(count > 0 for count in counts[:-1])

    def test_active_counts_example(self):
        # On 3 lines: [0,1] swaps on inputs 10x (2 of them), then [1,2] ...
        counts = active_comparator_counts(bubble_sorting_network(3))
        assert counts == [2, 3, 1]


class TestRemoval:
    def test_removal_preserves_behaviour_and_shrinks(self):
        combo = batcher_sorting_network(5).then(bubble_sorting_network(5))
        simplified, removed = remove_redundant_comparators(combo)
        assert removed > 0
        assert simplified.size + removed == combo.size
        assert networks_equivalent(simplified, combo)
        assert is_sorter(simplified, strategy="binary")

    def test_removal_is_idempotent(self):
        combo = batcher_sorting_network(4).then(optimal_sorting_network(4))
        simplified, _ = remove_redundant_comparators(combo)
        again, removed_again = remove_redundant_comparators(simplified)
        assert removed_again == 0
        assert again == simplified

    def test_removal_on_irredundant_network_is_a_noop(self, four_sorter):
        simplified, removed = remove_redundant_comparators(four_sorter)
        assert removed == 0
        assert simplified == four_sorter

    def test_redundant_comparators_are_undetectable_stuck_pass_faults(self):
        """The tie-in with the fault experiments: a redundant comparator's
        stuck-pass fault cannot be detected by any test vector."""
        sorter = optimal_sorting_network(4)
        padded = sorter.extended([(0, 1)])
        redundant = redundant_comparator_indices(padded)
        assert padded.size - 1 in redundant
        fault = StuckPassFault(padded.size - 1)
        coverage = fault_coverage(padded, [fault], sorting_binary_test_set(4))
        assert coverage == 0.0
        # Whereas the network as a whole still has full coverage of the
        # detectable faults.
        all_faults = enumerate_single_faults(padded, kinds=("stuck-pass",))
        assert fault_coverage(padded, all_faults, sorting_binary_test_set(4)) < 1.0
