"""Cross-checks proving the scalar, vectorised and bit-packed engines agree.

Hypothesis property tests over random networks, random binary batches and
random fault universes: every ``engine=`` choice must produce identical
outputs, identical property verdicts and identical fault-detection matrices.
These are the guarantees that let the fast bit-packed engine replace the
reference engines on the exhaustive workloads.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.core import (
    EVALUATION_ENGINES,
    ComparatorNetwork,
    apply_network_to_batch,
    words_to_array,
)
from repro.faults import (
    enumerate_single_faults,
    fault_detection_matrix,
)
from repro.properties import is_sorter
from repro.testsets import network_passes_test_set, sorting_binary_test_set

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def networks(draw, min_lines: int = 2, max_lines: int = 7, max_size: int = 12):
    """A random standard comparator network."""
    n = draw(st.integers(min_lines, max_lines))
    size = draw(st.integers(0, max_size))
    comparators = []
    for _ in range(size):
        low = draw(st.integers(0, n - 2))
        high = draw(st.integers(low + 1, n - 1))
        comparators.append((low, high))
    return ComparatorNetwork.from_pairs(n, comparators)


@st.composite
def network_and_binary_batch(draw, max_words: int = 150):
    network = draw(networks())
    num_words = draw(st.integers(0, max_words))
    rows = draw(
        st.lists(
            st.lists(
                st.integers(0, 1),
                min_size=network.n_lines,
                max_size=network.n_lines,
            ),
            min_size=num_words,
            max_size=num_words,
        )
    )
    return network, rows


@st.composite
def network_and_faults(draw):
    network = draw(networks(min_lines=3, max_lines=6, max_size=8))
    kinds = draw(
        st.sets(
            st.sampled_from(("stuck-pass", "stuck-swap", "reversed", "line-stuck")),
            min_size=1,
        )
    )
    input_only = draw(st.booleans())
    faults = enumerate_single_faults(
        network, kinds=sorted(kinds), line_stuck_at_input_only=input_only
    )
    return network, faults


# ----------------------------------------------------------------------
# Batch evaluation agreement
# ----------------------------------------------------------------------


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(network_and_binary_batch())
def test_all_engines_agree_on_binary_batches(data):
    network, rows = data
    batch = words_to_array(rows, n_lines=network.n_lines)
    outputs = {
        engine: apply_network_to_batch(network, batch, engine=engine)
        for engine in EVALUATION_ENGINES
    }
    reference = outputs["scalar"]
    for engine, result in outputs.items():
        assert np.array_equal(result, reference), engine


@settings(
    max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None
)
@given(networks(max_lines=6))
def test_all_engines_agree_on_sorter_verdicts(network):
    verdicts = {
        (strategy, engine): is_sorter(network, strategy=strategy, engine=engine)
        for strategy in ("binary", "testset")
        for engine in EVALUATION_ENGINES
    }
    assert len(set(verdicts.values())) == 1, verdicts


@settings(
    max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None
)
@given(networks(max_lines=6))
def test_all_engines_agree_on_test_set_application(network):
    vectors = sorting_binary_test_set(network.n_lines)
    verdicts = {
        engine: network_passes_test_set(network, vectors, engine=engine)
        for engine in EVALUATION_ENGINES
    }
    assert len(set(verdicts.values())) == 1, verdicts


# ----------------------------------------------------------------------
# Fault-simulation agreement: the batched prefix-sharing engine must equal
# the old per-fault loop (and both must equal the scalar reference)
# ----------------------------------------------------------------------


@settings(
    max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
)
@given(network_and_faults(), st.sampled_from(("specification", "reference")))
def test_fault_matrices_identical_across_engines(data, criterion):
    network, faults = data
    vectors = sorting_binary_test_set(network.n_lines)
    reference = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="scalar"
    )
    for engine in ("vectorized", "bitpacked"):
        matrix = fault_detection_matrix(
            network, faults, vectors, criterion=criterion, engine=engine
        )
        assert np.array_equal(matrix, reference), (engine, criterion)


@pytest.mark.parametrize("criterion", ["specification", "reference"])
@pytest.mark.parametrize("engine", ["scalar", "vectorized", "bitpacked"])
def test_fault_matrix_engines_on_batcher(batcher8, criterion, engine):
    """Deterministic pin: all engines, full fault universe, Batcher(8)."""
    faults = enumerate_single_faults(batcher8, line_stuck_at_input_only=False)
    vectors = sorting_binary_test_set(8)[:64]
    matrix = fault_detection_matrix(
        batcher8, faults, vectors, criterion=criterion, engine=engine
    )
    reference = fault_detection_matrix(
        batcher8, faults, vectors, criterion=criterion
    )
    assert matrix.shape == (len(faults), 64)
    assert np.array_equal(matrix, reference)
