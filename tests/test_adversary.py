"""Unit tests for the Lemma 2.1 adversary construction (the paper's core lemma)."""

from __future__ import annotations

import pytest

from repro.constructions import bubble_sorting_network
from repro.exceptions import AdversaryError
from repro.properties import is_selector, is_sorter
from repro.testsets import (
    brute_force_near_sorter,
    failing_inputs,
    near_merger,
    near_selector,
    near_sorter,
    near_sorter_table,
    one_interchange_observation_holds,
    sorts_exactly_all_but,
    verify_near_sorter,
)
from repro.words import unsorted_binary_words


class TestLemma21Exhaustive:
    """The heart of the reproduction: H_sigma sorts everything except sigma."""

    @pytest.mark.parametrize("n", range(2, 9))
    def test_every_adversary_fails_exactly_on_its_word(self, n):
        for sigma in unsorted_binary_words(n):
            network = near_sorter(sigma)
            assert sorts_exactly_all_but(network, sigma), sigma

    @pytest.mark.parametrize("n", range(2, 8))
    def test_one_interchange_observation(self, n):
        """The paper's remark: H_sigma(sigma) is one interchange from sorted."""
        for sigma in unsorted_binary_words(n):
            assert one_interchange_observation_holds(sigma)

    @pytest.mark.parametrize("n", range(3, 8))
    def test_adversaries_are_standard_networks(self, n):
        for sigma in unsorted_binary_words(n)[::3]:
            assert near_sorter(sigma).standard

    def test_base_case_n2(self):
        network = near_sorter((1, 0))
        assert network.size == 0
        assert sorts_exactly_all_but(network, (1, 0))


class TestAdversaryInterface:
    def test_sorted_word_rejected(self):
        with pytest.raises(AdversaryError):
            near_sorter((0, 0, 1, 1))

    def test_non_binary_word_rejected(self):
        from repro.exceptions import NotBinaryError

        with pytest.raises(NotBinaryError):
            near_sorter((0, 2, 1))

    def test_verify_near_sorter_accepts_valid(self):
        sigma = (0, 1, 0, 1)
        verify_near_sorter(sigma, near_sorter(sigma))  # must not raise

    def test_verify_near_sorter_rejects_sorters(self, four_sorter):
        with pytest.raises(AdversaryError):
            verify_near_sorter((1, 0, 1, 0), four_sorter)

    def test_failing_inputs_of_a_near_sorter_is_singleton(self):
        sigma = (1, 1, 0, 1, 0)
        assert failing_inputs(near_sorter(sigma)) == [sigma]

    def test_failing_inputs_of_a_sorter_is_empty(self, batcher8):
        assert failing_inputs(batcher8) == []

    def test_table_covers_every_unsorted_word(self):
        table = near_sorter_table(4)
        assert set(table) == set(unsorted_binary_words(4))
        for sigma, network in table.items():
            assert sorts_exactly_all_but(network, sigma)

    def test_custom_sorter_factory(self):
        sigma = (0, 1, 1, 0, 1, 0)
        network = near_sorter(sigma, sorter_factory=bubble_sorting_network)
        assert sorts_exactly_all_but(network, sigma)

    def test_adversary_is_not_a_sorter_but_almost(self):
        sigma = (0, 1, 0, 1, 1, 0)
        adversary = near_sorter(sigma)
        assert not is_sorter(adversary, strategy="binary")
        # It sorts every *other* unsorted word.
        others = [w for w in unsorted_binary_words(6) if w != sigma]
        from repro.properties import sorts_all_words

        assert sorts_all_words(adversary, others)


class TestLemma23SelectorAdversaries:
    @pytest.mark.parametrize("n,k", [(4, 1), (4, 2), (5, 2), (6, 3)])
    def test_adversary_defeats_selection_only_on_sigma(self, n, k):
        from repro.testsets import selector_binary_test_set

        for sigma in selector_binary_test_set(n, k):
            adversary = near_selector(sigma, k)
            assert not is_selector(adversary, k, strategy="binary")
            # It selects correctly on every other word of T_k.
            from repro.properties import selects_correctly

            for other in selector_binary_test_set(n, k):
                if other != sigma:
                    assert selects_correctly(adversary, k, other)

    def test_rejects_words_with_too_many_zeros(self):
        with pytest.raises(AdversaryError):
            near_selector((0, 0, 1, 0), 1)  # three zeros > k=1


class TestTheorem25MergerAdversaries:
    @pytest.mark.parametrize("n", [4, 6])
    def test_adversary_defeats_merging_only_on_sigma(self, n):
        from repro.properties import is_merger, merges_correctly
        from repro.testsets import merging_binary_test_set

        for sigma in merging_binary_test_set(n):
            adversary = near_merger(sigma)
            assert not is_merger(adversary, strategy="binary")
            for other in merging_binary_test_set(n):
                if other != sigma:
                    assert merges_correctly(adversary, other)

    def test_rejects_inputs_without_sorted_halves(self):
        with pytest.raises(AdversaryError):
            near_merger((1, 0, 0, 1))

    def test_rejects_odd_length(self):
        with pytest.raises(AdversaryError):
            near_merger((1, 0, 1))


class TestBruteForceSearch:
    def test_brute_force_finds_the_fig2_networks(self):
        # Every unsorted word of length 3 admits a 2-comparator near-sorter.
        for sigma in unsorted_binary_words(3):
            network = brute_force_near_sorter(sigma, max_size=2)
            assert network is not None
            assert network.size <= 2
            assert sorts_exactly_all_but(network, sigma)

    def test_brute_force_respects_budget(self):
        # With a budget of 0 comparators only sigma = 10...0-style words on
        # two lines admit a (trivial) near-sorter.
        assert brute_force_near_sorter((1, 0), max_size=0) is not None
        assert brute_force_near_sorter((0, 1, 0), max_size=0) is None

    def test_brute_force_rejects_sorted_words(self):
        with pytest.raises(AdversaryError):
            brute_force_near_sorter((0, 1, 1))

    def test_brute_force_agrees_with_recursive_construction(self):
        # For n=4 the smallest near-sorters need 5 comparators (as many as an
        # optimal sorter!), so give the search a budget of 5 and check only a
        # couple of words to keep the test fast.
        for sigma in [(0, 0, 1, 0), (1, 0, 1, 1)]:
            brute = brute_force_near_sorter(sigma, max_size=5)
            assert brute is not None
            assert brute.size == 5
            assert sorts_exactly_all_but(brute, sigma)
            assert sorts_exactly_all_but(near_sorter(sigma), sigma)
