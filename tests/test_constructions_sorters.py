"""Unit tests for the classical sorting-network constructions."""

from __future__ import annotations

import pytest

from repro.constructions import (
    batcher_size,
    batcher_sorting_network,
    bitonic_sorting_network,
    bitonic_sorting_network_standard,
    bose_nelson_sorting_network,
    bubble_sorting_network,
    insertion_sorting_network,
    known_optimal_sizes,
    next_power_of_two,
    odd_even_transposition_network,
    optimal_sorting_network,
    primitive_network_size_lower_bound,
)
from repro.exceptions import ConstructionError
from repro.properties import is_sorter


class TestBatcher:
    @pytest.mark.parametrize("n", range(1, 13))
    def test_is_a_sorter_for_every_size(self, n):
        assert is_sorter(batcher_sorting_network(n), strategy="binary")

    def test_size_matches_known_values_for_powers_of_two(self):
        # Odd-even merge-sort sizes: 1->0, 2->1, 4->5, 8->19, 16->63.
        assert batcher_size(2) == 1
        assert batcher_size(4) == 5
        assert batcher_size(8) == 19
        assert batcher_size(16) == 63

    def test_depth_for_powers_of_two(self):
        assert batcher_sorting_network(4).depth == 3
        assert batcher_sorting_network(8).depth == 6

    def test_network_is_standard(self):
        assert batcher_sorting_network(10).standard

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConstructionError):
            batcher_sorting_network(0)

    def test_caching_returns_same_object(self):
        assert batcher_sorting_network(6) is batcher_sorting_network(6)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(8) == 8
        assert next_power_of_two(0) == 1


class TestBoseNelson:
    @pytest.mark.parametrize("n", range(1, 12))
    def test_is_a_sorter_for_every_size(self, n):
        assert is_sorter(bose_nelson_sorting_network(n), strategy="binary")

    def test_known_small_sizes(self):
        # Bose-Nelson produces the optimal sizes for n <= 4.
        assert bose_nelson_sorting_network(2).size == 1
        assert bose_nelson_sorting_network(3).size == 3
        assert bose_nelson_sorting_network(4).size == 5

    def test_standard(self):
        assert bose_nelson_sorting_network(9).standard


class TestPrimitiveNetworks:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_bubble_sorts(self, n):
        assert is_sorter(bubble_sorting_network(n), strategy="binary")

    @pytest.mark.parametrize("n", range(1, 9))
    def test_insertion_sorts(self, n):
        assert is_sorter(insertion_sorting_network(n), strategy="binary")

    @pytest.mark.parametrize("n", range(1, 9))
    def test_odd_even_transposition_sorts(self, n):
        assert is_sorter(odd_even_transposition_network(n), strategy="binary")

    def test_all_have_height_one(self):
        assert bubble_sorting_network(6).height == 1
        assert insertion_sorting_network(6).height == 1
        assert odd_even_transposition_network(6).height == 1

    def test_bubble_meets_the_primitive_lower_bound(self):
        for n in range(2, 8):
            assert bubble_sorting_network(n).size == primitive_network_size_lower_bound(n)

    def test_too_few_transposition_rounds_fail(self):
        # n-2 rounds cannot sort the reverse permutation for n >= 3.
        net = odd_even_transposition_network(5, rounds=3)
        assert not is_sorter(net, strategy="binary")

    def test_zero_rounds_is_empty(self):
        assert odd_even_transposition_network(4, rounds=0).size == 0


class TestBitonic:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_textbook_variant_sorts(self, n):
        assert is_sorter(bitonic_sorting_network(n), strategy="binary")

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_standard_variant_sorts(self, n):
        assert is_sorter(bitonic_sorting_network_standard(n), strategy="binary")

    def test_textbook_variant_is_nonstandard(self):
        # The paper's point: the bitonic sorter is not a network in its sense.
        assert not bitonic_sorting_network(4).standard

    def test_standard_variant_is_standard(self):
        assert bitonic_sorting_network_standard(8).standard

    def test_both_variants_have_equal_size(self):
        for n in (4, 8, 16):
            assert (
                bitonic_sorting_network(n).size
                == bitonic_sorting_network_standard(n).size
            )

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConstructionError):
            bitonic_sorting_network(6)
        with pytest.raises(ConstructionError):
            bitonic_sorting_network_standard(6)


class TestOptimalNetworks:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_tabulated_networks_sort(self, n):
        assert is_sorter(optimal_sorting_network(n), strategy="binary")

    @pytest.mark.parametrize("n", range(1, 9))
    def test_tabulated_sizes_match_literature(self, n):
        assert optimal_sorting_network(n).size == known_optimal_sizes[n]

    def test_no_table_beyond_eight(self):
        with pytest.raises(ConstructionError):
            optimal_sorting_network(9)

    def test_optimal_networks_beat_or_match_batcher(self):
        for n in range(2, 9):
            assert optimal_sorting_network(n).size <= batcher_sorting_network(n).size
