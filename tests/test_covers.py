"""Unit tests for :mod:`repro.words.covers` (the covering-set machinery)."""

from __future__ import annotations

import pytest

from repro.exceptions import TestSetError
from repro.words import (
    all_permutations,
    chain_of_permutation,
    count_ones,
    cover_of_permutation,
    cover_of_permutation_set,
    cover_word,
    dominates,
    find_covering_permutation,
    identity_permutation,
    is_cover_test_set_for_sorting,
    no_permutation_covers_both,
    permutation_covers,
    permutation_from_chain,
    permutation_from_one_based,
    sorted_binary_words,
    uncovered_words,
    unsorted_binary_words,
)


class TestPaperExample:
    """The paper's worked example: the cover of (3 1 4 2) is
    {1111, 1011, 1010, 0010, 0000}."""

    PERM = permutation_from_one_based((3, 1, 4, 2))
    EXPECTED = frozenset({
        (1, 1, 1, 1),
        (1, 0, 1, 1),
        (1, 0, 1, 0),
        (0, 0, 1, 0),
        (0, 0, 0, 0),
    })

    def test_cover_matches_paper(self):
        assert set(cover_of_permutation(self.PERM)) == self.EXPECTED

    def test_cover_levels(self):
        assert cover_word(self.PERM, 0) == (0, 0, 0, 0)
        assert cover_word(self.PERM, 1) == (0, 0, 1, 0)
        assert cover_word(self.PERM, 4) == (1, 1, 1, 1)

    def test_permutation_covers_predicate(self):
        assert permutation_covers(self.PERM, (1, 0, 1, 0))
        assert not permutation_covers(self.PERM, (0, 1, 0, 1))


class TestCoverStructure:
    def test_cover_has_one_word_per_weight(self):
        for perm in all_permutations(4):
            cover = cover_of_permutation(perm)
            assert sorted(count_ones(w) for w in cover) == list(range(5))

    def test_cover_is_a_chain_in_dominance_order(self):
        for perm in list(all_permutations(4))[:10]:
            cover = chain_of_permutation(perm)
            for lower, upper in zip(cover, cover[1:]):
                assert dominates(lower, upper)

    def test_identity_cover_is_the_sorted_words(self):
        assert set(cover_of_permutation(identity_permutation(5))) == set(
            sorted_binary_words(5)
        )

    def test_cover_level_out_of_range(self):
        with pytest.raises(ValueError):
            cover_word((0, 1, 2), 4)

    def test_cover_of_set_is_union(self):
        perms = [identity_permutation(3), (2, 1, 0)]
        union = cover_of_permutation_set(perms)
        assert union == set(cover_of_permutation(perms[0])) | set(
            cover_of_permutation(perms[1])
        )


class TestChainPermutationBijection:
    def test_round_trip_for_all_permutations(self):
        for perm in all_permutations(4):
            assert permutation_from_chain(cover_of_permutation(perm)) == perm

    def test_chain_order_does_not_matter(self):
        perm = (2, 0, 3, 1)
        chain = cover_of_permutation(perm)
        assert permutation_from_chain(list(reversed(chain))) == perm

    def test_rejects_incomplete_chain(self):
        with pytest.raises(TestSetError):
            permutation_from_chain([(0, 0), (1, 1)])

    def test_rejects_non_chain(self):
        with pytest.raises(TestSetError):
            permutation_from_chain([(0, 0), (0, 1), (1, 0), (1, 1)])


class TestFindCoveringPermutation:
    def test_finds_cover_for_single_word(self):
        word = (0, 1, 1, 0)
        perm = find_covering_permutation([word])
        assert perm is not None
        assert permutation_covers(perm, word)

    def test_finds_cover_for_a_chain_of_words(self):
        words = [(0, 0, 1, 0), (0, 1, 1, 0), (1, 1, 1, 0)]
        perm = find_covering_permutation(words)
        assert perm is not None
        for word in words:
            assert permutation_covers(perm, word)

    def test_no_cover_for_equal_weight_distinct_words(self):
        assert find_covering_permutation([(0, 1, 1), (1, 1, 0)]) is None

    def test_no_cover_for_incomparable_words(self):
        assert find_covering_permutation([(1, 1, 0, 0), (0, 0, 1, 1)]) is None

    def test_empty_input(self):
        assert find_covering_permutation([]) is None

    def test_no_permutation_covers_both_same_word(self):
        assert not no_permutation_covers_both((1, 0, 1), (1, 0, 1))

    def test_no_permutation_covers_both_equal_weight(self):
        # The antichain argument behind the Theorem 2.2 (ii) lower bound.
        assert no_permutation_covers_both((0, 1, 1, 0), (1, 0, 0, 1))


class TestTestSetPredicates:
    def test_scd_permutations_cover_everything(self):
        from repro.words import sorting_cover_permutations

        assert is_cover_test_set_for_sorting(sorting_cover_permutations(5))

    def test_identity_alone_is_not_a_test_set(self):
        assert not is_cover_test_set_for_sorting([identity_permutation(4)])

    def test_uncovered_words_reports_gaps(self):
        missing = uncovered_words([identity_permutation(3)], 3)
        assert set(missing) == set(unsorted_binary_words(3))

    def test_empty_set_is_not_a_test_set(self):
        assert not is_cover_test_set_for_sorting([])
