"""Unit tests for :mod:`repro.core.random_networks`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    all_standard_comparators,
    random_height_limited_network,
    random_network,
    random_networks,
    random_sorter_mutation,
    random_standard_comparator,
)
from repro.core.random_networks import as_rng, iter_random_words
from repro.exceptions import ConstructionError


class TestComparatorAlphabet:
    def test_full_alphabet_size(self):
        assert len(all_standard_comparators(5)) == 10

    def test_span_limited_alphabet(self):
        adjacent = all_standard_comparators(5, max_span=1)
        assert len(adjacent) == 4
        assert all(c.span == 1 for c in adjacent)

    def test_alphabet_all_standard(self):
        assert all(c.standard for c in all_standard_comparators(6))


class TestRandomGeneration:
    def test_random_network_shape(self, rng):
        net = random_network(6, 12, rng)
        assert net.n_lines == 6
        assert net.size == 12
        assert net.standard

    def test_random_network_reproducible_with_seed(self):
        assert random_network(5, 7, 42) == random_network(5, 7, 42)

    def test_random_network_zero_size(self, rng):
        assert random_network(4, 0, rng).size == 0

    def test_random_network_too_few_lines(self):
        with pytest.raises(ConstructionError):
            random_network(1, 3, 0)

    def test_random_networks_count(self, rng):
        nets = random_networks(5, 4, 7, rng)
        assert len(nets) == 7

    def test_height_limited_network_respects_span(self, rng):
        net = random_height_limited_network(8, 20, 2, rng)
        assert net.height <= 2

    def test_height_limited_rejects_bad_height(self, rng):
        with pytest.raises(ConstructionError):
            random_height_limited_network(8, 5, 0, rng)

    def test_random_standard_comparator_in_range(self, rng):
        for _ in range(20):
            comp = random_standard_comparator(6, rng)
            assert 0 <= comp.low < comp.high < 6

    def test_as_rng_accepts_generator_and_seed(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen
        assert isinstance(as_rng(3), np.random.Generator)

    def test_iter_random_words(self, rng):
        words = list(iter_random_words(5, 10, rng))
        assert len(words) == 10
        assert all(len(w) == 5 and set(w) <= {0, 1} for w in words)


class TestMutations:
    def test_delete_mutation_shrinks(self, four_sorter, rng):
        mutated = random_sorter_mutation(
            four_sorter, rng, operations=("delete",)
        )
        assert mutated.size == four_sorter.size - 1

    def test_reverse_mutation_keeps_size(self, four_sorter, rng):
        mutated = random_sorter_mutation(
            four_sorter, rng, operations=("reverse",)
        )
        assert mutated.size == four_sorter.size
        assert not mutated.standard

    def test_rewire_mutation_keeps_size_and_standardness(self, four_sorter, rng):
        mutated = random_sorter_mutation(
            four_sorter, rng, operations=("rewire",)
        )
        assert mutated.size == four_sorter.size
        assert mutated.standard

    def test_unknown_operation_rejected(self, four_sorter, rng):
        with pytest.raises(ConstructionError):
            random_sorter_mutation(four_sorter, rng, operations=("scramble",))

    def test_empty_network_rejected(self, rng):
        from repro.core import ComparatorNetwork

        with pytest.raises(ConstructionError):
            random_sorter_mutation(ComparatorNetwork.identity(4), rng)

    def test_mutations_usually_break_sorting(self, batcher8, rng):
        """Deleting a comparator from Batcher-8 always breaks it (no redundancy)."""
        from repro.properties import is_sorter

        broken = 0
        for _ in range(10):
            mutated = random_sorter_mutation(batcher8, rng, operations=("delete",))
            if not is_sorter(mutated, strategy="binary"):
                broken += 1
        assert broken >= 8
