"""Shared hypothesis strategies for the property-based test layer.

One place for the generators the differential-oracle tests are built on —
random comparator networks, explicit 0/1 test batches, fault universes
drawn from the registered model zoo, and the engine / criterion /
chunk-size combinations every bit-identity guarantee is quantified over.
The test modules import from here instead of copy-pasting composites.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

import repro.faults  # noqa: F401  (imports register the fault-model zoo)
from repro._registry import fault_model_names
from repro.core import ComparatorNetwork
from repro.core.evaluation import all_binary_words_array
from repro.core.network import Comparator
from repro.faults import enumerate_model_faults

__all__ = [
    "networks",
    "cube_subsets",
    "fault_universes",
    "fault_models",
    "mutate_one",
    "odd_chunks",
    "criteria",
    "engines",
]

# Chunk sizes that straddle the 64-bit block boundary of the bit-packed
# engine (1 word, sub-block, block-1, exact block, block+1, multi-block).
odd_chunks = st.sampled_from([1, 3, 7, 63, 64, 65, 100])
criteria = st.sampled_from(["specification", "reference"])
engines = st.sampled_from(["vectorized", "bitpacked"])
fault_models = st.sampled_from(fault_model_names())


@st.composite
def networks(draw, min_lines: int = 2, max_lines: int = 7, max_size: int = 12):
    """A random comparator network (standard and reversed comparators)."""
    n = draw(st.integers(min_lines, max_lines))
    size = draw(st.integers(0, max_size))
    comparators = []
    for _ in range(size):
        low = draw(st.integers(0, n - 2))
        high = draw(st.integers(low + 1, n - 1))
        comparators.append((low, high))
    return ComparatorNetwork.from_pairs(n, comparators)


@st.composite
def cube_subsets(draw, n_lines: int, max_words: int = 48):
    """An explicit 0/1 batch: random cube rows, duplicates allowed."""
    cube = all_binary_words_array(n_lines)
    count = draw(st.integers(1, max_words))
    rows = draw(
        st.lists(
            st.integers(0, cube.shape[0] - 1), min_size=count, max_size=count
        )
    )
    return cube[np.asarray(rows)]


@st.composite
def fault_universes(draw, network: ComparatorNetwork, max_faults: int = 32):
    """(model name, fault universe) for one registered model on ``network``.

    Oversized universes are windowed to ``max_faults`` consecutive faults
    (window position drawn) so the simulators stay cheap under hypothesis
    while every model — including the k-subset composites — keeps getting
    exercised.
    """
    name = draw(fault_models)
    universe = enumerate_model_faults(network, name)
    if len(universe) > max_faults:
        start = draw(st.integers(0, len(universe) - max_faults))
        universe = universe[start : start + max_faults]
    return name, universe


def mutate_one(network: ComparatorNetwork, index: int) -> ComparatorNetwork:
    """Flip the direction of one comparator (the retest-loop mutation)."""
    comps = list(network.comparators)
    c = comps[index]
    comps[index] = Comparator(c.low, c.high, not c.reversed)
    return ComparatorNetwork(network.n_lines, comps)
