"""Documentation build smoke checks.

Two guarantees: (a) every public symbol of :mod:`repro.parallel` and
:mod:`repro.faults` carries a docstring and the modules render cleanly
under :mod:`pydoc` (the CI lint job runs the same sweep), and (b) the
committed documentation artefacts — ``EXPERIMENTS.md``,
``docs/ARCHITECTURE.md``, ``docs/CACHING.md`` — exist and still mention
what the README links them for, so a stale regeneration fails fast.
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path
import pydoc

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOCUMENTED_MODULES = [
    "repro.parallel",
    "repro.parallel.chunking",
    "repro.parallel.config",
    "repro.parallel.executor",
    "repro.parallel.fault_shard",
    "repro.parallel.pool",
    "repro.parallel.shm",
    "repro.faults",
    "repro.faults.models",
    "repro.faults.injection",
    "repro.faults.simulation",
    "repro.faults.coverage",
    "repro.faults.diagnosis",
    "repro.core.bitpacked",
    "repro.core.scratch",
    "repro.api",
    "repro.api.session",
    "repro.api.results",
    "repro.api.registry",
    "repro.cache",
    "repro.cache.keys",
    "repro.cache.store",
    "repro.cache.restore",
    "repro.observe",
    "repro.observe.metrics",
    "repro.observe.spans",
    "repro.api.serialize",
    "repro.serve",
    "repro.serve.protocol",
    "repro.serve.jobstore",
    "repro.serve.service",
    "repro.serve.client",
]


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_module_renders_under_pydoc(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip()
    text = pydoc.render_doc(module)
    assert module_name.rsplit(".", 1)[-1] in text


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_every_public_symbol_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    missing = []
    for name in exported:
        obj = getattr(module, name)
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue  # constants document themselves via module comments
        doc = inspect.getdoc(obj)
        if not doc or len(doc.strip()) < 20:
            missing.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                if not inspect.getdoc(meth):
                    missing.append(f"{name}.{meth_name}")
    assert not missing, (
        f"{module_name}: public symbols without (sufficient) docstrings: "
        f"{missing}"
    )


def test_experiments_report_is_committed_and_current():
    report = REPO_ROOT / "EXPERIMENTS.md"
    assert report.is_file(), "EXPERIMENTS.md must be committed (see README)"
    text = report.read_text()
    # The columns the README/ROADMAP advertise must actually be present.
    for marker in (
        "verify_seconds_bitpacked",
        "sim_seconds",
        "prune_ratio",
        "exhaustive-cube",
        "E11",
    ):
        assert marker in text, f"EXPERIMENTS.md lost the {marker!r} column"


def test_architecture_doc_is_committed_and_linked():
    doc = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    assert doc.is_file(), "docs/ARCHITECTURE.md must be committed"
    text = doc.read_text()
    for marker in (
        "fault_detection_matrix",
        "Dominated-state pruning",
        "PrefixStates",
        "CubeVectors",
        "Module map",
        "Session",
        "repro.api",
        # The fault-model / diagnosis section.
        "Fault models and diagnosis",
        "MultiFault",
        "BridgingFault",
        "IntermittentFault",
        "Fault dictionaries",
        "adaptive_test_order",
        "enumerate_multi_faults",
        # The observability section.
        "Observability",
        "repro.observe",
        "session.fault_matrix",
        "Counter lifecycle",
        "merge_packed",
        "set_observation_enabled",
        "RPR007",
        # The service-layer section: protocol, state machine, dedup key
        # anatomy, the jobs/<id>/ layout and crash-resume.
        "Service layer",
        "repro.serve",
        "newline-delimited JSON",
        "Job state machine",
        "Dedup key anatomy",
        "jobs/<id>/",
        "request.json",
        "result.json",
        "jobs_replayed",
        "jobs_resumed",
        "thread_safe=True",
        "RPR008",
    ):
        assert marker in text, f"docs/ARCHITECTURE.md lost {marker!r}"
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "EXPERIMENTS.md" in readme
    assert "Public API" in readme, "README lost the Public API section"
    assert "Session" in readme
    # The worked fault-dictionary example.
    for marker in (
        "Fault models and diagnosis",
        "session.diagnose(",
        "result.dictionary.lookup(",
        "result.test_order",
        "--fault-model",
    ):
        assert marker in readme, f"README lost the diagnosis example {marker!r}"
    # The span-trace export example.
    for marker in ("Observability", "--trace", "REPRO_TRACE", "execution.trace"):
        assert marker in readme, f"README lost the trace example {marker!r}"
    # The serve quickstart transcript.
    for marker in (
        "repro-networks serve",
        "serve --socket",
        "submit --socket",
        "status --socket",
        '"deduped": true',
        "examples/serve_client.py",
    ):
        assert marker in readme, f"README lost the serve quickstart {marker!r}"
    example = REPO_ROOT / "examples" / "serve_client.py"
    assert example.is_file(), "examples/serve_client.py must be committed"
    example_text = example.read_text()
    for marker in ("ServeClient", "decode_result", "shutdown"):
        assert marker in example_text, f"serve example lost {marker!r}"


def test_caching_doc_is_committed_and_linked():
    doc = REPO_ROOT / "docs" / "CACHING.md"
    assert doc.is_file(), "docs/CACHING.md must be committed (see README)"
    text = doc.read_text()
    # The contract's load-bearing sections, as linked from README and
    # ARCHITECTURE: key anatomy, prefix-hash reuse, eviction,
    # bit-identity and the negative advice.
    for marker in (
        "cube-sorted",
        "fault-any",
        "prefix_hashes",
        "acquire_prefix_states",
        "bit-identical",
        "least-recently-used",
        "RPR006",
        "When *not* to cache",
        "ResultCache",
        "CacheStats",
        "thread_safe=True",
        "repro.serve",
    ):
        assert marker in text, f"docs/CACHING.md lost {marker!r}"
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/CACHING.md" in readme, "README must link docs/CACHING.md"
    assert "cache=True" in readme
    architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
    assert "CACHING.md" in architecture
    assert "repro.cache" in architecture
