"""Unit tests for the sorter property checkers and classical lemmas."""

from __future__ import annotations

import pytest

from repro.constructions import (
    batcher_sorting_network,
    bitonic_sorting_network,
    bose_nelson_sorting_network,
    bubble_sorting_network,
    optimal_sorting_network,
)
from repro.core import ComparatorNetwork
from repro.exceptions import TestSetError
from repro.properties import (
    SORTER_STRATEGIES,
    find_sorting_counterexample,
    floyd_lemma_holds_for,
    fraction_sorted,
    is_sorter,
    is_sorter_binary,
    is_sorter_permutation,
    sorts_all_words,
    sorts_word,
    threshold_words,
    unsorted_outputs,
    zero_one_principle_holds_for,
)
from repro.testsets import near_sorter
from repro.words import all_binary_words, unsorted_binary_words


class TestIsSorter:
    @pytest.mark.parametrize("strategy", SORTER_STRATEGIES)
    def test_all_strategies_accept_a_sorter(self, batcher8, strategy):
        assert is_sorter(batcher8, strategy=strategy)

    @pytest.mark.parametrize("strategy", SORTER_STRATEGIES)
    def test_all_strategies_reject_a_non_sorter(self, non_sorter_4, strategy):
        assert not is_sorter(non_sorter_4, strategy=strategy)

    @pytest.mark.parametrize("strategy", SORTER_STRATEGIES)
    def test_all_strategies_reject_near_sorters(self, strategy):
        adversary = near_sorter((0, 1, 1, 0, 1, 0))
        assert not is_sorter(adversary, strategy=strategy)

    def test_empty_network_on_one_line_is_a_sorter(self):
        assert is_sorter(ComparatorNetwork.identity(1), strategy="binary")

    def test_empty_network_on_two_lines_is_not(self):
        assert not is_sorter(ComparatorNetwork.identity(2), strategy="binary")

    def test_unknown_strategy_rejected(self, batcher8):
        with pytest.raises(TestSetError):
            is_sorter(batcher8, strategy="magic")

    def test_strategies_agree_on_random_networks(self, rng):
        from repro.core import random_network

        for _ in range(15):
            net = random_network(5, 8, rng)
            verdicts = {is_sorter(net, strategy=s) for s in SORTER_STRATEGIES}
            assert len(verdicts) == 1

    def test_counterexample_is_a_real_failure(self, non_sorter_4):
        witness = find_sorting_counterexample(non_sorter_4)
        assert witness is not None
        assert not sorts_word(non_sorter_4, witness)

    def test_counterexample_none_for_sorter(self, batcher8):
        assert find_sorting_counterexample(batcher8) is None

    def test_counterexample_restricted_candidates(self):
        adversary = near_sorter((1, 0, 1, 0))
        # Searching only other words finds nothing.
        others = [w for w in unsorted_binary_words(4) if w != (1, 0, 1, 0)]
        assert find_sorting_counterexample(adversary, candidates=others) is None
        assert find_sorting_counterexample(
            adversary, candidates=[(1, 0, 1, 0)]
        ) == (1, 0, 1, 0)


class TestSortednessHelpers:
    def test_sorts_word(self, four_sorter):
        assert sorts_word(four_sorter, (3, 1, 2, 0))

    def test_sorts_all_words(self, four_sorter):
        assert sorts_all_words(four_sorter, all_binary_words(4))

    def test_unsorted_outputs_for_near_sorter(self):
        sigma = (0, 1, 0, 1, 0)
        adversary = near_sorter(sigma)
        assert unsorted_outputs(adversary, all_binary_words(5)) == [sigma]

    def test_fraction_sorted(self, non_sorter_4):
        fraction = fraction_sorted(non_sorter_4, list(all_binary_words(4)))
        assert 0.0 < fraction < 1.0

    def test_fraction_sorted_empty_collection(self, four_sorter):
        assert fraction_sorted(four_sorter, []) == 1.0


class TestZeroOnePrincipleAndFloyd:
    @pytest.mark.parametrize(
        "factory,n",
        [
            (batcher_sorting_network, 5),
            (bose_nelson_sorting_network, 5),
            (bubble_sorting_network, 4),
            (optimal_sorting_network, 6),
        ],
    )
    def test_binary_and_permutation_verdicts_agree_for_sorters(self, factory, n):
        network = factory(n)
        assert is_sorter_binary(network)
        assert is_sorter_permutation(network)

    def test_zero_one_principle_on_random_networks(self, rng):
        from repro.core import random_network

        for _ in range(10):
            assert zero_one_principle_holds_for(random_network(5, 6, rng))

    def test_zero_one_principle_on_near_sorters(self):
        for sigma in [(1, 0, 0, 1), (0, 1, 1, 0, 0)]:
            assert zero_one_principle_holds_for(near_sorter(sigma))

    def test_zero_one_principle_on_nonstandard_network(self):
        assert zero_one_principle_holds_for(bitonic_sorting_network(4))

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_floyd_lemma_for_sorters_and_others(self, n, rng):
        from repro.core import random_network

        assert floyd_lemma_holds_for(batcher_sorting_network(n))
        assert floyd_lemma_holds_for(random_network(n, 4, rng))

    def test_threshold_words(self):
        images = threshold_words((3, 1, 2, 1))
        assert (1, 0, 0, 0) in images  # threshold 3
        assert (1, 0, 1, 0) in images  # threshold 2
        assert (1, 1, 1, 1) in images  # threshold 1

    def test_threshold_images_explain_general_sorting(self, four_sorter):
        # A network sorts a word iff it sorts all of its threshold images.
        word = (5, 2, 7, 2)
        sorted_all_images = all(
            sorts_word(four_sorter, image) for image in threshold_words(word)
        )
        assert sorted_all_images == sorts_word(four_sorter, word)


class TestMonotonicity:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_monotonicity_for_sorters(self, n):
        from repro.properties import monotonicity_holds_for

        assert monotonicity_holds_for(batcher_sorting_network(n))

    def test_monotonicity_for_random_and_adversary_networks(self, rng):
        from repro.core import random_network
        from repro.properties import monotonicity_holds_for

        assert monotonicity_holds_for(near_sorter((1, 1, 0, 0, 1)))
        for _ in range(5):
            assert monotonicity_holds_for(random_network(5, 7, rng))

    def test_monotonicity_limit_guard(self, batcher8):
        from repro.properties import find_monotonicity_violation

        with pytest.raises(ValueError):
            find_monotonicity_violation(batcher8, exhaustive_limit=4)
