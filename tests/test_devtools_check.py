"""The devtools checker: golden fixtures, suppression, CLI, self-check.

Each ``tests/devtools_fixtures/rprXXX_case.py`` snippet deliberately
violates one rule; the line set the rule reports must match the fixture's
``# EXPECT`` markers exactly.  The self-check asserts the real tree
(``src``, ``tests``, ``benchmarks``) is clean at HEAD — the same
invocation CI runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import FileContext, Finding, all_rules, get_rule, is_suppressed
from repro.devtools.check import (
    DEFAULT_EXCLUDE_DIRS,
    check_file,
    check_paths,
    iter_python_files,
    main,
)

FIXTURES = Path(__file__).parent / "devtools_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]


def expected_lines(path: Path) -> list[int]:
    """1-based numbers of fixture lines carrying an ``# EXPECT`` marker."""
    return [
        lineno
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        )
        if "EXPECT" in text
    ]


def rule_lines(path: Path, rule_id: str) -> list[int]:
    """Unsuppressed finding lines of one rule over one fixture file."""
    findings = check_file(path, [get_rule(rule_id)], respect_scope=False)
    assert all(f.rule == rule_id for f in findings)
    return [f.line for f in findings]


# ----------------------------------------------------------------------
# Golden fixtures, one per rule
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule_id",
    ["RPR001", "RPR002", "RPR003", "RPR004", "RPR006", "RPR007", "RPR008"],
)
def test_rule_fires_exactly_on_expect_markers(rule_id):
    fixture = FIXTURES / f"rpr{rule_id[3:]}_case.py"
    assert rule_lines(fixture, rule_id) == expected_lines(fixture)


def test_rpr005_fires_exactly_on_expect_markers():
    # RPR005 exempts non-package files inside check(), so the fixture is
    # parsed under a synthetic src/repro path.
    fixture = FIXTURES / "rpr005_case.py"
    source = fixture.read_text(encoding="utf-8")
    ctx = FileContext.from_source("src/repro/_rpr005_case.py", source)
    assert ctx.module == "repro._rpr005_case"
    rule = get_rule("RPR005")
    lines = sorted(
        f.line for f in rule.check(ctx) if not is_suppressed(f, ctx.noqa)
    )
    assert lines == expected_lines(fixture)


def test_rpr003_message_names_every_deprecated_kwarg():
    fixture = FIXTURES / "rpr003_case.py"
    findings = check_file(fixture, [get_rule("RPR003")], respect_scope=False)
    both = [f for f in findings if "config, prune" in f.message]
    assert len(both) == 1


def test_rpr002_exempts_the_registry_module():
    rule = get_rule("RPR002")
    source = 'ENGINES = ("scalar", "vectorized", "bitpacked")\n'
    exempt = FileContext.from_source("src/repro/_registry.py", source)
    assert list(rule.check(exempt)) == []
    plain = FileContext.from_source("src/repro/other.py", source)
    assert len(list(rule.check(plain))) == 1


def test_rpr007_exempts_the_observe_package():
    rule = get_rule("RPR007")
    source = "import time\n\nstart = time.perf_counter()\n"
    for exempt_path in (
        "src/repro/observe/spans.py",
        "src/repro/observe/__init__.py",
    ):
        exempt = FileContext.from_source(exempt_path, source)
        assert list(rule.check(exempt)) == []
    plain = FileContext.from_source("src/repro/api/session.py", source)
    assert len(list(rule.check(plain))) == 1


def test_rpr008_applies_only_under_repro_serve():
    rule = get_rule("RPR008")
    source = "import time\n\nasync def f():\n    time.sleep(1)\n"
    served = FileContext.from_source("src/repro/serve/service.py", source)
    assert rule.applies(served)
    assert len(list(rule.check(served))) == 1
    # Event-loop discipline is a serve concern: the same code elsewhere
    # in src (or in tests) is out of scope.
    library = FileContext.from_source("src/repro/api/session.py", source)
    assert not rule.applies(library)
    test_file = FileContext.from_source("tests/test_serve.py", source)
    assert not rule.applies(test_file)


def test_rpr006_exempts_the_cache_restore_module():
    rule = get_rule("RPR006")
    source = "states = PrefixStates.build(network, packed)\n"
    exempt = FileContext.from_source("src/repro/cache/restore.py", source)
    assert list(rule.check(exempt)) == []
    plain = FileContext.from_source("src/repro/faults/other.py", source)
    assert len(list(rule.check(plain))) == 1


# ----------------------------------------------------------------------
# Suppression semantics
# ----------------------------------------------------------------------
def test_blanket_noqa_suppresses_every_rule(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(
        "import numpy as np\n"
        "from repro.core.scratch import allocation_free\n"
        "@allocation_free\n"
        "def f(a):\n"
        "    return np.zeros(a.shape)  # repro: noqa\n",
        encoding="utf-8",
    )
    assert check_file(path, [get_rule("RPR001")], respect_scope=False) == []


def test_noqa_with_other_code_does_not_suppress(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(
        "import numpy as np\n"
        "from repro.core.scratch import allocation_free\n"
        "@allocation_free\n"
        "def f(a):\n"
        "    return np.zeros(a.shape)  # repro: noqa RPR999\n",
        encoding="utf-8",
    )
    findings = check_file(path, [get_rule("RPR001")], respect_scope=False)
    assert [f.rule for f in findings] == ["RPR001"]


def test_is_suppressed_requires_matching_line():
    finding = Finding(rule="RPR001", path="x.py", line=3, col=0, message="m")
    assert not is_suppressed(finding, {})
    assert not is_suppressed(finding, {2: None})
    assert is_suppressed(finding, {3: None})
    assert is_suppressed(finding, {3: frozenset({"RPR001"})})
    assert not is_suppressed(finding, {3: frozenset({"RPR002"})})


# ----------------------------------------------------------------------
# Scoping and file walking
# ----------------------------------------------------------------------
def test_src_scoped_rules_skip_test_files():
    # The same engine tuple that fires under src/ is legal in tests.
    fixture = FIXTURES / "rpr002_case.py"
    assert check_file(fixture, [get_rule("RPR002")], respect_scope=True) == []


def test_walk_skips_fixture_directory():
    assert "devtools_fixtures" in DEFAULT_EXCLUDE_DIRS
    walked = list(iter_python_files([str(FIXTURES.parent)]))
    assert walked, "tests/ walk found no python files"
    assert not any("devtools_fixtures" in str(p) for p in walked)
    # Explicitly named files bypass the exclusion.
    direct = list(iter_python_files([str(FIXTURES / "rpr001_case.py")]))
    assert len(direct) == 1


def test_parse_error_becomes_rpr000(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n", encoding="utf-8")
    findings = check_file(path)
    assert [f.rule for f in findings] == ["RPR000"]
    assert "could not parse" in findings[0].message


# ----------------------------------------------------------------------
# Self-check: the real tree is clean (the invocation CI runs)
# ----------------------------------------------------------------------
def test_head_is_clean():
    findings = check_paths(
        [
            str(REPO_ROOT / "src" / "repro"),
            str(REPO_ROOT / "tests"),
            str(REPO_ROOT / "benchmarks"),
        ]
    )
    assert findings == [], "\n".join(f.format_human() for f in findings)


def test_every_rule_is_registered():
    assert [r.id for r in all_rules()] == [
        "RPR001",
        "RPR002",
        "RPR003",
        "RPR004",
        "RPR005",
        "RPR006",
        "RPR007",
        "RPR008",
    ]


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR005"):
        assert rule_id in out


def test_cli_reports_fixture_findings_as_json(capsys):
    # RPR001 has scope "all", so the CLI flags the fixture when it is
    # named explicitly (bypassing the directory exclusion).
    code = main(
        [str(FIXTURES / "rpr001_case.py"), "--select", "RPR001",
         "--format", "json"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["line"] for f in payload] == expected_lines(
        FIXTURES / "rpr001_case.py"
    )
    assert all(f["rule"] == "RPR001" for f in payload)


def test_cli_clean_run_exits_zero(capsys):
    assert main([str(REPO_ROOT / "src" / "repro" / "devtools")]) == 0
    assert capsys.readouterr().out == ""


def test_cli_unknown_rule_exits_two(capsys):
    assert main(["--select", "RPR999", str(FIXTURES)]) == 2
    assert "unknown rule id" in capsys.readouterr().err
