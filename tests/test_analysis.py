"""Unit tests for the analysis/experiment harness."""

from __future__ import annotations

import pytest

from repro.analysis import (
    deterministic_strategy_outcomes,
    false_accept_rate_against_adversaries,
    format_rows,
    format_table,
    height_class_summary,
    minimum_test_set_for_height_class,
    monte_carlo_is_sorter,
    reachable_function_tables,
    sorting_strategy_costs,
    yao_comparison_row,
    yao_comparison_table,
)
from repro.analysis.experiments import (
    experiment_fig1,
    experiment_fig2,
    experiment_lemma21,
    experiment_thm22_binary,
    experiment_thm22_permutation,
    experiment_thm24_selector,
    experiment_thm25_merging,
    experiment_yao_comparison,
)
from repro.constructions import batcher_sorting_network
from repro.exceptions import TestSetError
from repro.testsets import near_sorter, sorting_test_set_size
from repro.words import reverse_permutation


class TestCosts:
    def test_strategy_costs_cover_all_strategies(self):
        costs = sorting_strategy_costs(6)
        names = {c.strategy for c in costs}
        assert "exhaustive-binary" in names
        assert "minimum-permutation-testset" in names
        for cost in costs:
            assert cost.comparator_evaluations == cost.num_vectors * batcher_sorting_network(6).size

    def test_minimum_testset_cheaper_than_exhaustive(self):
        costs = {c.strategy: c for c in sorting_strategy_costs(8)}
        assert (
            costs["minimum-binary-testset"].num_vectors
            < costs["exhaustive-binary"].num_vectors
        )
        assert (
            costs["minimum-permutation-testset"].num_vectors
            < costs["minimum-binary-testset"].num_vectors
        )

    def test_yao_table(self):
        table = yao_comparison_table([4, 6, 8])
        assert len(table) == 3
        assert all(row["ratio"] > 1 for row in table)
        row = yao_comparison_row(6)
        assert row["binary_testset"] == sorting_test_set_size(6)


class TestDecision:
    def test_monte_carlo_accepts_sorters(self, batcher8, rng):
        outcome = monte_carlo_is_sorter(batcher8, 32, rng)
        assert outcome.verdict is True
        assert outcome.vectors_applied == 32

    def test_monte_carlo_rejection_is_always_correct(self, rng):
        adversary = near_sorter((1, 0, 1, 0, 1))
        # If it ever rejects, the network genuinely is not a sorter — run a
        # few trials and only assert no spurious rejection logic crashes.
        for _ in range(5):
            outcome = monte_carlo_is_sorter(adversary, 8, rng)
            assert outcome.strategy == "monte-carlo"

    def test_monte_carlo_zero_budget_accepts(self, rng):
        adversary = near_sorter((1, 0))
        assert monte_carlo_is_sorter(adversary, 0, rng).verdict is True

    def test_monte_carlo_negative_budget_rejected(self, batcher8):
        with pytest.raises(TestSetError):
            monte_carlo_is_sorter(batcher8, -1)

    def test_false_accept_rate_close_to_theory(self):
        n, budget = 4, 8
        rate = false_accept_rate_against_adversaries(
            n, budget, trials_per_adversary=40, rng=1
        )
        theory = (1 - 2.0 ** (-n)) ** budget
        assert abs(rate - theory) < 0.15

    def test_false_accept_rate_decreases_with_budget(self):
        low = false_accept_rate_against_adversaries(4, 2, trials_per_adversary=30, rng=2)
        high = false_accept_rate_against_adversaries(4, 64, trials_per_adversary=30, rng=2)
        assert high <= low

    def test_deterministic_outcomes(self, four_sorter):
        outcomes = deterministic_strategy_outcomes(four_sorter)
        assert all(o.verdict for o in outcomes)
        strategies = [o.strategy for o in outcomes]
        assert "testset" in strategies


class TestHeightClassSearch:
    def test_reachable_tables_n3_span1(self):
        tables = reachable_function_tables(3, 1)
        # Identity, [12], [23], [12][23], [23][12], and the sorter: 6 behaviours.
        assert len(tables) == 6

    def test_primitive_class_permutation_minimum_is_one(self):
        """De Bruijn, reproduced: one permutation test suffices for height 1."""
        for n in (3, 4):
            test_set = minimum_test_set_for_height_class(
                n, 1, input_model="permutation"
            )
            assert len(test_set) == 1
            assert test_set[0] == reverse_permutation(n)

    def test_full_span_binary_minimum_matches_theorem_22(self):
        for n in (3, 4):
            test_set = minimum_test_set_for_height_class(n, n - 1, input_model="binary")
            assert len(test_set) == sorting_test_set_size(n)

    def test_height2_n4_answer_to_open_problem(self):
        """The paper's open question, answered for n=4: height-2 networks
        already need the full 2^n - n - 1 binary tests."""
        test_set = minimum_test_set_for_height_class(4, 2, input_model="binary")
        assert len(test_set) == sorting_test_set_size(4)

    def test_height1_binary_minimum_is_small(self):
        test_set = minimum_test_set_for_height_class(4, 1, input_model="binary")
        assert 1 <= len(test_set) < sorting_test_set_size(4)

    def test_summary_row_fields(self):
        summary = height_class_summary(3, 1, input_model="permutation")
        assert summary["n"] == 3
        assert summary["minimum_test_set_size"] == 1
        assert summary["sorter_behaviours"] >= 1

    def test_bad_parameters(self):
        with pytest.raises(TestSetError):
            reachable_function_tables(3, 0)
        with pytest.raises(TestSetError):
            reachable_function_tables(3, 1, input_model="ternary")


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [[1, 2.5], ["xx", 3]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_rows_with_title_and_columns(self):
        rows = [{"n": 3, "size": 4}, {"n": 4, "size": 11}]
        text = format_rows(rows, columns=["n", "size"], title="Theorem 2.2")
        assert "Theorem 2.2" in text
        assert "11" in text

    def test_format_rows_empty(self):
        assert format_rows([], title="empty") == "empty"


class TestExperimentHarness:
    def test_fig1_rows(self):
        rows = experiment_fig1()
        assert len(rows) == 2
        transcribed = rows[0]
        assert transcribed["measured_output"] == (1, 3, 2, 4)
        assert rows[1]["is_sorter"] is True
        assert all(row["match"] for row in rows)

    def test_fig2_rows_all_valid(self):
        rows = experiment_fig2()
        assert len(rows) == 4
        assert all(row["constructed_valid"] for row in rows)
        assert all(row["smallest_size"] == 2 for row in rows)

    def test_lemma21_rows(self):
        rows = experiment_lemma21(ns=(4, 5))
        for row in rows:
            assert row["valid_adversaries"] == row["num_adversaries"]
            assert row["one_interchange_holds"] == row["num_adversaries"]
            assert row["num_adversaries"] == row["paper_num_adversaries"]

    def test_thm22_rows(self):
        for row in experiment_thm22_binary(ns=(3, 4, 5), empirical_up_to=4):
            assert row["match"]
        for row in experiment_thm22_permutation(ns=(3, 4, 5)):
            assert row["match"]

    def test_thm24_and_thm25_rows(self):
        assert all(r["match"] for r in experiment_thm24_selector(cases=[(4, 1), (5, 2)]))
        assert all(r["match"] for r in experiment_thm25_merging(ns=(4, 6)))

    def test_yao_rows_monotone_ratio(self):
        rows = experiment_yao_comparison(ns=(4, 8, 12))
        ratios = [row["ratio"] for row in rows]
        assert ratios == sorted(ratios)
