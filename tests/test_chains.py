"""Unit tests for :mod:`repro.words.chains` (symmetric chain decompositions)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import TestSetError
from repro.words import (
    all_binary_words,
    binary_words_with_zero_count,
    bracket_match,
    chain_lowest_member,
    chain_through,
    count_ones,
    cover_of_permutation_set,
    dominates,
    extend_to_maximal_chain,
    identity_permutation,
    is_sorted_word,
    minimum_chain_cover_via_matching,
    scd_permutations,
    selector_cover_permutations,
    sorting_cover_permutations,
    symmetric_chain_decomposition,
    unsorted_binary_words,
)


class TestBracketMatching:
    def test_simple_match(self):
        matched, unmatched = bracket_match((1, 0))
        assert matched == [(0, 1)]
        assert unmatched == []

    def test_all_zeros_all_unmatched(self):
        matched, unmatched = bracket_match((0, 0, 0))
        assert matched == []
        assert unmatched == [0, 1, 2]

    def test_unmatched_zeros_precede_unmatched_ones(self):
        _, unmatched = bracket_match((0, 1, 1, 0, 1))
        # positions: 0 (unmatched zero), then the unmatched ones.
        values_in_order = [(0, 1, 1, 0, 1)[i] for i in unmatched]
        assert values_in_order == sorted(values_in_order)


class TestSymmetricChains:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_chain_count_is_central_binomial(self, n):
        chains = symmetric_chain_decomposition(n)
        assert len(chains) == math.comb(n, n // 2)

    @pytest.mark.parametrize("n", range(1, 9))
    def test_chains_partition_the_cube(self, n):
        chains = symmetric_chain_decomposition(n)
        words = [w for chain in chains for w in chain]
        assert len(words) == 2**n
        assert len(set(words)) == 2**n

    @pytest.mark.parametrize("n", range(2, 8))
    def test_chains_are_symmetric_and_consecutive(self, n):
        for chain in symmetric_chain_decomposition(n):
            weights = [count_ones(w) for w in chain]
            assert weights == list(range(weights[0], weights[-1] + 1))
            assert weights[0] + weights[-1] == n

    @pytest.mark.parametrize("n", range(2, 8))
    def test_chains_are_chains_in_dominance_order(self, n):
        for chain in symmetric_chain_decomposition(n):
            for lower, upper in zip(chain, chain[1:]):
                assert dominates(lower, upper)

    def test_chain_through_and_lowest_member_consistent(self):
        word = (0, 1, 1, 0, 1, 0)
        chain = chain_through(word)
        assert word in chain
        assert chain[0] == chain_lowest_member(word)

    def test_sorted_words_form_one_chain(self):
        chain = chain_through((0,) * 5)
        assert all(is_sorted_word(w) for w in chain)
        assert len(chain) == 6


class TestMaximalChainExtension:
    def test_extension_has_all_weights(self):
        chain = [(0, 1, 0, 0), (0, 1, 0, 1), (0, 1, 1, 1)]
        full = extend_to_maximal_chain(chain)
        assert [count_ones(w) for w in full] == list(range(5))

    def test_extension_preserves_given_words(self):
        chain = [(0, 1, 1, 0)]
        full = extend_to_maximal_chain(chain)
        assert (0, 1, 1, 0) in full

    def test_rejects_non_chain(self):
        with pytest.raises(TestSetError):
            extend_to_maximal_chain([(0, 1), (1, 0)])

    def test_rejects_empty(self):
        with pytest.raises(TestSetError):
            extend_to_maximal_chain([])


class TestCoveringPermutations:
    @pytest.mark.parametrize("n", range(2, 8))
    def test_scd_permutations_cover_every_word(self, n):
        covered = cover_of_permutation_set(scd_permutations(n))
        assert covered == set(all_binary_words(n))

    @pytest.mark.parametrize("n", range(2, 8))
    def test_sorting_cover_permutations_size_and_validity(self, n):
        perms = sorting_cover_permutations(n)
        assert len(perms) == math.comb(n, n // 2) - 1
        assert identity_permutation(n) not in perms
        covered = cover_of_permutation_set(perms)
        assert all(w in covered for w in unsorted_binary_words(n))

    def test_sorting_cover_permutations_can_include_identity(self):
        perms = sorting_cover_permutations(4, include_identity=True)
        assert identity_permutation(4) in perms
        assert len(perms) == math.comb(4, 2)

    @pytest.mark.parametrize("n,k", [(4, 1), (4, 2), (5, 2), (6, 2), (6, 3), (7, 3), (6, 5)])
    def test_selector_cover_permutations(self, n, k):
        perms = selector_cover_permutations(n, k)
        assert len(perms) == math.comb(n, min(k, n // 2)) - 1
        covered = cover_of_permutation_set(perms)
        for zeros in range(k + 1):
            for word in binary_words_with_zero_count(n, zeros):
                if not is_sorted_word(word):
                    assert word in covered

    def test_selector_cover_permutations_bad_k(self):
        with pytest.raises(TestSetError):
            selector_cover_permutations(5, 0)


class TestMatchingBasedChainCover:
    @pytest.mark.parametrize("n,max_zeros", [(4, 1), (4, 2), (5, 2), (6, 3), (7, 2)])
    def test_chain_count_matches_binomial(self, n, max_zeros):
        chains = minimum_chain_cover_via_matching(n, max_zeros)
        assert len(chains) == math.comb(n, max_zeros)

    @pytest.mark.parametrize("n,max_zeros", [(4, 2), (5, 2), (6, 3)])
    def test_cover_includes_all_required_words(self, n, max_zeros):
        chains = minimum_chain_cover_via_matching(n, max_zeros)
        covered = {w for chain in chains for w in chain}
        for zeros in range(max_zeros + 1):
            for word in binary_words_with_zero_count(n, zeros):
                assert word in covered

    @pytest.mark.parametrize("n,max_zeros", [(5, 2), (6, 3)])
    def test_chains_are_chains(self, n, max_zeros):
        for chain in minimum_chain_cover_via_matching(n, max_zeros):
            for lower, upper in zip(chain, chain[1:]):
                assert dominates(lower, upper)

    def test_rejects_out_of_range(self):
        with pytest.raises(TestSetError):
            minimum_chain_cover_via_matching(4, 3)

    def test_agrees_with_bracketing_construction(self):
        # Same number of chains as the number of SCD chains reaching the top
        # max_zeros+1 levels.
        n, max_zeros = 6, 2
        matching_chains = minimum_chain_cover_via_matching(n, max_zeros)
        scd = symmetric_chain_decomposition(n)
        reaching = [c for c in scd if count_ones(c[0]) <= max_zeros]
        assert len(matching_chains) == len(reaching)
