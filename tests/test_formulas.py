"""Unit tests for the closed-form test-set sizes (all theorems of the paper)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import TestSetError
from repro.testsets import (
    central_binomial_approximation,
    exhaustive_binary_size,
    exhaustive_permutation_size,
    merging_permutation_test_set_size,
    merging_test_set_size,
    primitive_sorting_test_set_size,
    selector_permutation_test_set_size,
    selector_test_set_size,
    sorting_permutation_test_set_size,
    sorting_test_set_size,
    yao_ratio,
)


class TestTheorem22:
    def test_binary_values_from_the_paper(self):
        # 2^n - n - 1
        assert sorting_test_set_size(2) == 1
        assert sorting_test_set_size(3) == 4
        assert sorting_test_set_size(4) == 11
        assert sorting_test_set_size(10) == 2**10 - 11

    def test_permutation_values(self):
        # C(n, floor(n/2)) - 1
        assert sorting_permutation_test_set_size(2) == 1
        assert sorting_permutation_test_set_size(4) == 5
        assert sorting_permutation_test_set_size(5) == 9
        assert sorting_permutation_test_set_size(10) == math.comb(10, 5) - 1

    def test_permutation_bound_never_exceeds_binary_bound(self):
        for n in range(2, 20):
            assert sorting_permutation_test_set_size(n) <= sorting_test_set_size(n)

    def test_invalid_n(self):
        with pytest.raises(TestSetError):
            sorting_test_set_size(0)


class TestTheorem24:
    def test_selector_binary_values(self):
        # sum_{i=0..k} C(n,i) - k - 1
        assert selector_test_set_size(4, 1) == (1 + 4) - 2
        assert selector_test_set_size(4, 2) == (1 + 4 + 6) - 3
        assert selector_test_set_size(6, 3) == sum(math.comb(6, i) for i in range(4)) - 4

    def test_selector_equals_sorting_when_k_is_n(self):
        for n in range(2, 10):
            assert selector_test_set_size(n, n) == sorting_test_set_size(n)

    def test_selector_permutation_values(self):
        assert selector_permutation_test_set_size(6, 2) == math.comb(6, 2) - 1
        assert selector_permutation_test_set_size(6, 5) == math.comb(6, 3) - 1
        # k beyond floor(n/2) saturates at the sorting bound.
        for n in range(2, 10):
            assert (
                selector_permutation_test_set_size(n, n)
                == sorting_permutation_test_set_size(n)
            )

    def test_selector_monotone_in_k(self):
        for n in range(3, 9):
            sizes = [selector_test_set_size(n, k) for k in range(1, n + 1)]
            assert sizes == sorted(sizes)

    def test_invalid_k(self):
        with pytest.raises(TestSetError):
            selector_test_set_size(5, 0)
        with pytest.raises(TestSetError):
            selector_permutation_test_set_size(5, 6)


class TestTheorem25:
    def test_binary_values(self):
        assert merging_test_set_size(4) == 4
        assert merging_test_set_size(6) == 9
        assert merging_test_set_size(10) == 25

    def test_permutation_values(self):
        assert merging_permutation_test_set_size(4) == 2
        assert merging_permutation_test_set_size(10) == 5

    def test_odd_n_rejected(self):
        with pytest.raises(TestSetError):
            merging_test_set_size(5)
        with pytest.raises(TestSetError):
            merging_permutation_test_set_size(7)


class TestBaselinesAndAsymptotics:
    def test_exhaustive_sizes(self):
        assert exhaustive_binary_size(5) == 32
        assert exhaustive_permutation_size(5) == 120

    def test_minimum_test_set_strictly_smaller_than_exhaustive(self):
        for n in range(2, 15):
            assert sorting_test_set_size(n) < exhaustive_binary_size(n)
            assert sorting_permutation_test_set_size(n) < exhaustive_permutation_size(n)

    def test_primitive_bound_is_one(self):
        assert primitive_sorting_test_set_size(5) == 1
        assert primitive_sorting_test_set_size(1) == 0

    def test_central_binomial_approximation_accuracy(self):
        # The paper's 2^{n+1}/sqrt(2 pi n) estimate is within ~10% already at n=16.
        for n in (8, 12, 16, 20):
            exact = math.comb(n, n // 2)
            approx = central_binomial_approximation(n)
            assert abs(approx - exact) / exact < 0.15

    def test_yao_ratio_grows(self):
        # The binary test set is larger by a factor growing like sqrt(n).
        ratios = [yao_ratio(n) for n in (4, 8, 16, 24)]
        assert ratios == sorted(ratios)
        assert ratios[0] > 1
