"""Unit tests for selector and merger constructions."""

from __future__ import annotations

import pytest

from repro.constructions import (
    batcher_merging_network,
    batcher_sorting_network,
    bubble_selection_network,
    merger_from_sorter,
    odd_even_merge_network,
    prune_to_output_lines,
    pruned_selection_network,
    selector_from_sorter,
    zipper_merging_network,
)
from repro.exceptions import ConstructionError
from repro.properties import is_merger, is_selector, is_sorter


class TestSelectorConstructions:
    @pytest.mark.parametrize("n,k", [(4, 1), (4, 2), (5, 3), (6, 2), (7, 4), (8, 3)])
    def test_bubble_selector_selects(self, n, k):
        assert is_selector(bubble_selection_network(n, k), k, strategy="binary")

    @pytest.mark.parametrize("n,k", [(4, 1), (5, 2), (6, 3), (8, 4)])
    def test_pruned_selector_selects(self, n, k):
        assert is_selector(pruned_selection_network(n, k), k, strategy="binary")

    @pytest.mark.parametrize("n,k", [(5, 2), (6, 3)])
    def test_sorter_is_a_selector(self, n, k):
        assert is_selector(selector_from_sorter(n, k), k, strategy="binary")

    def test_bubble_selector_size(self):
        # k passes of lengths n-1, n-2, ..., n-k.
        net = bubble_selection_network(6, 2)
        assert net.size == 5 + 4

    def test_bubble_selector_is_primitive(self):
        assert bubble_selection_network(7, 3).height == 1

    def test_bubble_selector_usually_not_a_sorter(self):
        assert not is_sorter(bubble_selection_network(5, 2), strategy="binary")

    def test_pruned_selector_not_larger_than_sorter(self):
        for n, k in [(8, 1), (8, 2), (8, 4)]:
            assert (
                pruned_selection_network(n, k).size
                <= batcher_sorting_network(n).size
            )

    def test_pruning_to_all_lines_keeps_everything(self):
        sorter = batcher_sorting_network(6)
        assert prune_to_output_lines(sorter, list(range(6))) == sorter

    def test_pruning_preserves_selected_outputs(self):
        sorter = batcher_sorting_network(6)
        pruned = prune_to_output_lines(sorter, [0, 1])
        from repro.words import all_binary_words

        for word in all_binary_words(6):
            assert pruned.apply(word)[:2] == sorter.apply(word)[:2]

    def test_prune_bad_lines_rejected(self):
        with pytest.raises(ConstructionError):
            prune_to_output_lines(batcher_sorting_network(4), [4])

    @pytest.mark.parametrize("n,k", [(0, 1), (4, 0), (4, 5)])
    def test_bad_parameters_rejected(self, n, k):
        with pytest.raises(ConstructionError):
            bubble_selection_network(n, k)


class TestMergerConstructions:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10, 12, 16])
    def test_batcher_merger_merges(self, n):
        assert is_merger(batcher_merging_network(n), strategy="binary")

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_zipper_merger_merges(self, n):
        assert is_merger(zipper_merging_network(n), strategy="binary")

    @pytest.mark.parametrize("n", [4, 8])
    def test_sorter_merges(self, n):
        assert is_merger(merger_from_sorter(n), strategy="binary")

    def test_batcher_merger_is_not_a_sorter_in_general(self):
        assert not is_sorter(batcher_merging_network(8), strategy="binary")

    def test_merger_size_power_of_two(self):
        # Odd-even merge of two sorted halves of length 4 uses 9 comparators.
        assert odd_even_merge_network(4).size == 9

    def test_merger_smaller_than_sorter(self):
        for n in (8, 16):
            assert (
                batcher_merging_network(n).size
                < batcher_sorting_network(n).size
            )

    def test_odd_n_rejected(self):
        with pytest.raises(ConstructionError):
            batcher_merging_network(5)

    def test_zero_half_rejected(self):
        with pytest.raises(ConstructionError):
            odd_even_merge_network(0)

    def test_non_power_of_two_halves(self):
        for half in (3, 5, 6, 7):
            assert is_merger(odd_even_merge_network(half), strategy="binary")
