"""Unit tests for the bit-packed evaluation engine (:mod:`repro.core.bitpacked`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Comparator,
    ComparatorNetwork,
    all_binary_words_array,
    apply_network_packed,
    apply_network_to_batch,
    batch_is_sorted,
    evaluate_on_all_binary_inputs,
    pack_batch,
    pack_words,
    packed_all_binary_words,
    packed_equal,
    packed_is_sorted,
    unpack_batch,
)
from repro.core.bitpacked import BLOCK_BITS
from repro.exceptions import EngineError, InputLengthError, NotBinaryError


class TestPacking:
    @pytest.mark.parametrize("n", range(0, 9))
    def test_pack_unpack_round_trip_full_cube(self, n):
        batch = all_binary_words_array(n)
        packed = pack_batch(batch)
        assert packed.num_words == 2**n
        assert packed.planes.shape == (n, (2**n + 63) // 64)
        assert np.array_equal(unpack_batch(packed), batch)

    def test_bit_layout_word_j_is_bit_j(self):
        # Word 3 (and only word 3) carries a 1 on line 1 → bit 3 of plane 1.
        words = [(0, 0), (0, 0), (0, 0), (0, 1), (0, 0)]
        packed = pack_words(words)
        assert int(packed.planes[0, 0]) == 0
        assert int(packed.planes[1, 0]) == 1 << 3

    def test_more_than_one_block(self):
        rng = np.random.default_rng(7)
        batch = rng.integers(0, 2, size=(3 * BLOCK_BITS + 17, 5), dtype=np.int8)
        packed = pack_batch(batch)
        assert packed.n_blocks == 4
        assert np.array_equal(unpack_batch(packed), batch)

    def test_padding_bits_stay_zero(self):
        batch = np.ones((5, 3), dtype=np.int8)
        packed = pack_batch(batch)
        assert int(packed.planes[0, 0]) == 0b11111
        assert np.array_equal(packed.pad_mask(), np.uint64([0b11111]))

    def test_empty_batch(self):
        packed = pack_batch(np.zeros((0, 4), dtype=np.int8))
        assert packed.num_words == 0
        assert packed.planes.shape == (4, 0)
        assert unpack_batch(packed).shape == (0, 4)
        assert packed_is_sorted(packed).shape == (0,)

    def test_empty_batch_width_preserved_via_hint(self):
        packed = pack_batch(np.zeros((0, 0), dtype=np.int8), n_lines=6)
        assert packed.planes.shape == (6, 0)

    def test_non_binary_rejected(self):
        with pytest.raises(NotBinaryError):
            pack_batch(np.array([[0, 2]], dtype=np.int64))
        with pytest.raises(NotBinaryError):
            pack_batch(np.array([[-1, 0]], dtype=np.int64))

    def test_wrong_ndim_rejected(self):
        with pytest.raises(InputLengthError):
            pack_batch(np.zeros(4, dtype=np.int8))

    @pytest.mark.parametrize("n", range(0, 10))
    def test_packed_all_binary_words_matches_packing_the_array(self, n):
        direct = packed_all_binary_words(n)
        reference = pack_batch(all_binary_words_array(n))
        assert direct.num_words == reference.num_words
        assert np.array_equal(direct.planes, reference.planes)


class TestPackedPredicates:
    def test_packed_is_sorted_matches_unpacked(self):
        rng = np.random.default_rng(0)
        batch = rng.integers(0, 2, size=(200, 6), dtype=np.int8)
        assert np.array_equal(
            packed_is_sorted(pack_batch(batch)), batch_is_sorted(batch)
        )

    def test_packed_is_sorted_single_line(self):
        batch = np.array([[0], [1]], dtype=np.int8)
        assert packed_is_sorted(pack_batch(batch)).tolist() == [True, True]

    def test_packed_equal(self):
        a = pack_words([(0, 1), (1, 1), (0, 0)])
        b = pack_words([(0, 1), (1, 0), (0, 0)])
        assert packed_equal(a, b).tolist() == [True, False, True]

    def test_packed_equal_shape_mismatch(self):
        with pytest.raises(InputLengthError):
            packed_equal(pack_words([(0, 1)]), pack_words([(0, 1, 1)]))


class TestPackedEvaluation:
    def test_matches_vectorized_on_the_cube(self, batcher8):
        batch = all_binary_words_array(8)
        expected = apply_network_to_batch(batcher8, batch)
        packed_out = apply_network_packed(batcher8, pack_batch(batch))
        assert np.array_equal(unpack_batch(packed_out), expected)

    def test_reversed_comparator(self):
        net = ComparatorNetwork(2, [Comparator(0, 1, reversed=True)])
        out = apply_network_to_batch(net, all_binary_words_array(2), engine="bitpacked")
        assert [tuple(int(v) for v in row) for row in out] == [
            (0, 0),
            (1, 0),
            (1, 0),
            (1, 1),
        ]

    def test_copy_semantics(self, four_sorter):
        packed = pack_batch(all_binary_words_array(4))
        before = packed.planes.copy()
        apply_network_packed(four_sorter, packed)
        assert np.array_equal(packed.planes, before)
        apply_network_packed(four_sorter, packed, copy=False)
        assert not np.array_equal(packed.planes, before)

    def test_line_count_mismatch(self, four_sorter):
        with pytest.raises(InputLengthError):
            apply_network_packed(four_sorter, pack_batch(all_binary_words_array(3)))

    def test_evaluate_on_all_binary_inputs_bitpacked(self, batcher8):
        assert np.array_equal(
            evaluate_on_all_binary_inputs(batcher8, engine="bitpacked"),
            evaluate_on_all_binary_inputs(batcher8),
        )


class TestEngineSelection:
    def test_unknown_engine_rejected(self, four_sorter):
        with pytest.raises(EngineError):
            apply_network_to_batch(
                four_sorter, all_binary_words_array(4), engine="quantum"
            )

    def test_bitpacked_rejects_non_binary_batches(self, four_sorter):
        perms = np.array([[3, 2, 1, 0]], dtype=np.int64)
        with pytest.raises(NotBinaryError):
            apply_network_to_batch(four_sorter, perms, engine="bitpacked")

    def test_scalar_engine_matches_vectorized(self, four_sorter):
        batch = all_binary_words_array(4)
        assert np.array_equal(
            apply_network_to_batch(four_sorter, batch, engine="scalar"),
            apply_network_to_batch(four_sorter, batch),
        )


class TestFaultyNetworksPacked:
    """The faulty-behaviour subclasses provide packed overrides; check them
    against their scalar ``apply`` on the full cube."""

    @pytest.mark.parametrize("index", [0, 2, 4])
    def test_stuck_swap(self, four_sorter, index):
        from repro.faults import StuckSwapFault

        faulty = StuckSwapFault(index).apply_to(four_sorter)
        batch = all_binary_words_array(4)
        out = unpack_batch(apply_network_packed(faulty, pack_batch(batch)))
        for row_in, row_out in zip(batch, out):
            assert tuple(int(v) for v in row_out) == faulty.apply(
                tuple(int(v) for v in row_in)
            )

    @pytest.mark.parametrize("line,value,stage", [(0, 1, 0), (2, 0, 1), (3, 1, 4)])
    def test_stuck_line(self, four_sorter, line, value, stage):
        from repro.faults import LineStuckFault

        faulty = LineStuckFault(line=line, value=value, stage=stage).apply_to(
            four_sorter
        )
        batch = all_binary_words_array(4)
        out = unpack_batch(apply_network_packed(faulty, pack_batch(batch)))
        for row_in, row_out in zip(batch, out):
            assert tuple(int(v) for v in row_out) == faulty.apply(
                tuple(int(v) for v in row_in)
            )

    def test_stuck_at_one_does_not_leak_into_padding(self, four_sorter):
        from repro.faults import LineStuckFault

        faulty = LineStuckFault(line=0, value=1, stage=0).apply_to(four_sorter)
        packed = pack_words([(0, 0, 0, 0)] * 3)  # 3 words, 61 padding bits
        out = apply_network_packed(faulty, packed)
        assert np.array_equal(out.planes & ~out.pad_mask()[None, :], 0 * out.planes)


class TestFloatBatches:
    def test_fractional_floats_raise_not_binary(self):
        network = ComparatorNetwork.from_pairs(2, [(0, 1)])
        batch = np.array([[0.75, 0.25]])
        with pytest.raises(NotBinaryError):
            pack_batch(batch)
        with pytest.raises(NotBinaryError):
            apply_network_to_batch(network, batch, engine="bitpacked")

    def test_integral_floats_are_accepted(self):
        network = ComparatorNetwork.from_pairs(2, [(0, 1)])
        batch = np.array([[1.0, 0.0], [0.0, 1.0]])
        outputs = apply_network_to_batch(network, batch, engine="bitpacked")
        assert np.array_equal(
            outputs, apply_network_to_batch(network, batch, engine="vectorized")
        )


class TestNarrowBinaryBatch:
    def test_narrows_binary_ints_and_keeps_engine(self):
        from repro.core import narrow_binary_batch

        batch, engine = narrow_binary_batch(
            np.array([[0, 1]], dtype=np.int64), "bitpacked"
        )
        assert batch.dtype == np.int8 and engine == "bitpacked"

    def test_falls_back_for_non_binary_and_preserves_floats(self):
        from repro.core import narrow_binary_batch

        batch, engine = narrow_binary_batch(
            np.array([[0, 5]], dtype=np.int64), "bitpacked"
        )
        assert batch.dtype == np.int64 and engine == "vectorized"
        floats, engine = narrow_binary_batch(np.array([[0.25, 0.75]]), "vectorized")
        assert floats.dtype == np.float64 and engine == "vectorized"
