"""The service layer: protocol, job store, dedup queue, crash-resume.

Three tiers:

* unit tests for the wire protocol (framing, request validation, the
  content-key anatomy) and the atomic job store;
* in-process end-to-end tests running the real asyncio server on a unix
  socket with blocking clients on worker threads — including the
  acceptance scenario (two concurrent identical fault-coverage
  submissions run the simulation once, ``jobs_deduped == 1``, both
  clients get bit-identical results) plus failure, timeout and
  cancellation lifecycles;
* subprocess crash-resume tests: ``python -m repro.serve`` is SIGKILLed
  and restarted against the same job directory — finished jobs must
  replay from disk bit-identically with the simulation counters staying
  at zero, interrupted jobs must re-run.

The unix sockets live under ``tempfile.mkdtemp(dir="/tmp")`` because
``AF_UNIX`` paths are length-limited (~108 bytes) and pytest tmp paths
can exceed that.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.constructions import batcher_sorting_network
from repro.exceptions import ServiceError
from repro.faults.simulation import SIMULATION_COUNTERS
from repro.serve import (
    JOB_KINDS,
    JobRequest,
    JobStore,
    ServeClient,
    VerificationService,
    serve,
)
from repro.serve.protocol import decode_message, encode_message

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

NETWORK = batcher_sorting_network(8)

#: ~1 s of bit-packed simulation: big enough to SIGKILL mid-run.
SLOW_NETWORK = batcher_sorting_network(15)


def coverage_job(network=NETWORK) -> dict:
    return JobRequest.build(
        "fault-coverage",
        network,
        vectors={"cube": network.n_lines},
        faults={"single": True},
    ).to_dict()


def slow_job() -> dict:
    return JobRequest.build(
        "fault-coverage",
        SLOW_NETWORK,
        vectors={"cube": SLOW_NETWORK.n_lines},
        faults={"model": "StuckPassFault"},
    ).to_dict()


@pytest.fixture
def sock_dir():
    """A /tmp-rooted scratch dir (unix-socket path length limit)."""
    path = Path(tempfile.mkdtemp(dir="/tmp", prefix="repro-serve-"))
    yield path
    shutil.rmtree(path, ignore_errors=True)


# ----------------------------------------------------------------------
# Protocol units
# ----------------------------------------------------------------------
def test_message_framing_round_trip():
    payload = {"op": "submit", "job": {"kind": "verify"}, "n": 3}
    line = encode_message(payload)
    assert line.endswith(b"\n")
    assert decode_message(line[:-1]) == payload
    # Deterministic bytes: equal payloads encode identically.
    assert encode_message(dict(reversed(list(payload.items())))) == line


def test_decode_rejects_garbage():
    with pytest.raises(ServiceError):
        decode_message(b"{not json")
    with pytest.raises(ServiceError):
        decode_message(b"[1, 2, 3]")


def test_job_request_validation():
    with pytest.raises(ServiceError):
        JobRequest.from_dict({"kind": "no-such-kind"})
    with pytest.raises(ServiceError):
        JobRequest.from_dict({"kind": "verify"})  # no network
    with pytest.raises(ServiceError):  # test-set refuses the cube
        JobRequest.build("test-set", NETWORK, vectors={"cube": 8})
    with pytest.raises(ServiceError):  # fault kind without faults
        JobRequest.build("fault-matrix", NETWORK, vectors={"cube": 8})
    with pytest.raises(ServiceError):  # empty word list
        JobRequest.build("test-set", NETWORK, vectors={"words": []})
    with pytest.raises(ServiceError):  # unknown fault spec member
        JobRequest.build(
            "fault-coverage", NETWORK, vectors={"cube": 8}, faults={"x": 1}
        )


def test_every_job_kind_is_buildable():
    words = {"words": [[0, 1] * 4, [1, 0] * 4]}
    specs = {
        "verify": {},
        "test-set": {"vectors": words},
        "fault-matrix": {"vectors": {"cube": 8}, "faults": {"single": True}},
        "fault-coverage": {"vectors": words, "faults": {"model": "BridgingFault"}},
        "diagnose": {"vectors": {"cube": 8}, "faults": {"single": True}},
    }
    assert set(specs) == set(JOB_KINDS)
    for kind, extra in specs.items():
        request = JobRequest.build(kind, NETWORK, **extra)
        assert request.kind == kind
        assert len(request.content_key()) == 32


def test_content_key_hashes_structure_not_formatting():
    job = coverage_job()
    key = JobRequest.from_dict(job).content_key(("bitpacked", 1, None, True))
    # Same payload through a JSON round trip with different key order.
    reordered = json.loads(
        json.dumps(job, sort_keys=True).replace(' ', '')
    )
    assert (
        JobRequest.from_dict(reordered).content_key(
            ("bitpacked", 1, None, True)
        )
        == key
    )
    # A different execution identity is a different computation.
    assert (
        JobRequest.from_dict(job).content_key(("scalar", 1, None, True))
        != key
    )
    # A different workload is a different key.
    other = dict(job, criterion="reference")
    assert (
        JobRequest.from_dict(other).content_key(("bitpacked", 1, None, True))
        != key
    )
    # Equivalent fault universes spelled differently collide (the key
    # hashes the *enumerated* faults, not the spec text).
    spelled = dict(job, faults={"single": True})
    assert (
        JobRequest.from_dict(spelled).content_key(
            ("bitpacked", 1, None, True)
        )
        == key
    )


# ----------------------------------------------------------------------
# Job store units
# ----------------------------------------------------------------------
def test_jobstore_create_load_and_artifacts(tmp_path):
    store = JobStore(tmp_path / "jobs")
    request = JobRequest.from_dict(coverage_job())
    key = request.content_key()
    job_id = store.create(request, key)
    assert job_id == f"000001-{key[:12]}"
    record = store.load(job_id)
    assert record.state == "queued"
    assert record.content_key == key
    assert record.request.kind == "fault-coverage"

    store.write_status(job_id, "running")
    assert store.read_status(job_id)["state"] == "running"
    store.write_status(job_id, "failed", detail="boom")
    assert store.load(job_id).detail == "boom"

    text = '{"type": "coverage", "coverage": 1.0}'
    store.write_result_text(job_id, text)
    assert store.read_result_text(job_id) == text
    assert store.read_trace_text(job_id) is None
    store.write_trace_text(job_id, '{"spans": []}')
    assert store.read_trace_text(job_id) == '{"spans": []}'

    # Sequences keep increasing, ids sort in submission order.
    second = store.create(request, key)
    assert second.startswith("000002-")
    assert [r.job_id for r in store.iter_jobs()] == [job_id, second]


def test_jobstore_skips_corrupt_directories(tmp_path):
    store = JobStore(tmp_path / "jobs")
    job_id = store.create(JobRequest.from_dict(coverage_job()), "ab" * 16)
    (store.root / "000099-deadbeef0000").mkdir()  # no request.json
    assert [r.job_id for r in store.iter_jobs()] == [job_id]
    with pytest.raises(ServiceError):
        store.load("000099-deadbeef0000")
    with pytest.raises(ServiceError):
        store.write_status(job_id, "no-such-state")


def test_jobstore_missing_result_reads_none(tmp_path):
    store = JobStore(tmp_path / "jobs")
    job_id = store.create(JobRequest.from_dict(coverage_job()), "cd" * 16)
    assert store.read_result_text(job_id) is None


# ----------------------------------------------------------------------
# In-process end-to-end (real server, unix socket, threaded clients)
# ----------------------------------------------------------------------
def run_with_server(scenario, tmp_path, sock_dir, **service_kwargs):
    """Boot service+server in-process, run *scenario* against it."""
    sock = str(sock_dir / "serve.sock")
    service_kwargs.setdefault("engine", "bitpacked")
    service_kwargs.setdefault("pool_size", 2)

    async def main():
        service = VerificationService(tmp_path / "jobs", **service_kwargs)
        ready: asyncio.Event = asyncio.Event()
        server = asyncio.create_task(
            serve(service, socket_path=sock, ready=ready)
        )
        await ready.wait()
        try:
            return await scenario(service, sock)
        finally:
            service.shutdown_requested.set()
            await server

    return asyncio.run(main())


def test_concurrent_identical_submissions_dedupe(tmp_path, sock_dir):
    """The acceptance scenario: one execution, two bit-identical results."""
    job = coverage_job()

    async def scenario(service, sock):
        def submit_and_wait():
            with ServeClient(socket_path=sock) as client:
                return client.submit(job, wait=True)

        first, second = await asyncio.gather(
            asyncio.to_thread(submit_and_wait),
            asyncio.to_thread(submit_and_wait),
        )
        assert first["job_id"] == second["job_id"]
        assert {first["deduped"], second["deduped"]} == {True, False}
        assert first["state"] == second["state"] == "done"
        # Bit-identical: the stored result text is served verbatim.
        assert first["result_json"] == second["result_json"]

        def inspect():
            with ServeClient(socket_path=sock) as client:
                return client.status(), client.job(first["job_id"])

        status, job_view = await asyncio.to_thread(inspect)
        assert status["metrics"]["jobs_accepted"] == 2
        assert status["metrics"]["jobs_deduped"] == 1
        assert status["metrics"]["jobs_executed"] == 1
        assert status["metrics"]["jobs_completed"] == 1
        assert status["simulation"]["faults"] > 0
        assert job_view["state"] == "done"

        # The decoded result is the typed dataclass, engine included.
        result = ServeClient.decode_result(first)
        assert result.execution.engine_effective == "bitpacked"
        assert result.coverage > 0.9

        # jobs/<id>/ holds all four artifacts.
        job_dir = service.store.job_dir(first["job_id"])
        assert sorted(p.name for p in job_dir.iterdir()) == [
            "request.json", "result.json", "status.json", "trace.json",
        ]
        trace = json.loads(job_dir.joinpath("trace.json").read_text())
        assert trace["spans"][0]["name"] == "serve.job"
        assert trace["spans"][0]["children"], "job span lost the run's trace"
        return None

    run_with_server(scenario, tmp_path, sock_dir)


def test_failed_job_reports_detail_and_is_not_dedup_target(
    tmp_path, sock_dir
):
    bad = JobRequest.build("verify", NETWORK).to_dict()
    bad["strategy"] = "no-such-strategy"

    async def scenario(service, sock):
        def run():
            with ServeClient(socket_path=sock) as client:
                first = client.submit(bad, wait=True)
                second = client.submit(bad, wait=False)
                return first, second, client.status()

        first, second, status = await asyncio.to_thread(run)
        assert first["state"] == "failed"
        assert "detail" in first
        # A failed job is retried, not deduplicated.
        assert second["deduped"] is False
        assert second["job_id"] != first["job_id"]
        assert status["metrics"]["jobs_failed"] >= 1
        await service.wait(second["job_id"])
        return None

    run_with_server(scenario, tmp_path, sock_dir)


def test_per_job_timeout_terminalises_as_failed(tmp_path, sock_dir):
    job = dict(coverage_job(), timeout=0.05)

    async def scenario(service, sock):
        # Gate the executor so the job provably outlasts its timeout —
        # the gate opens only after the failure has been observed.
        release = threading.Event()
        original = service._execute

        def gated(session, request):
            release.wait(30)
            return original(session, request)

        service._execute = gated

        def run():
            with ServeClient(socket_path=sock) as client:
                return client.submit(job, wait=True)

        response = await asyncio.to_thread(run)
        release.set()
        assert response["state"] == "failed"
        assert "timed out" in response["detail"]
        assert service.metrics.get("jobs_failed") == 1
        # The pooled session comes back once the thread finishes.
        for _ in range(200):
            if service._session_queue.qsize() == len(service.sessions):
                break
            await asyncio.sleep(0.05)
        assert service._session_queue.qsize() == len(service.sessions)
        return None

    run_with_server(scenario, tmp_path, sock_dir)


def test_cancel_queued_job(tmp_path, sock_dir):
    async def scenario(service, sock):
        def run():
            with ServeClient(socket_path=sock) as client:
                running = client.submit(slow_job(), wait=False)
                queued = client.submit(coverage_job(), wait=False)
                cancelled = client.cancel(queued["job_id"])
                final = client.result(queued["job_id"], wait=True)
                done = client.result(running["job_id"], wait=True)
                return cancelled, final, done, client.status()

        cancelled, final, done, status = await asyncio.to_thread(run)
        assert cancelled["state"] == "cancelled"
        assert final["state"] == "cancelled"
        assert "result_json" not in final
        assert done["state"] == "done"
        assert status["metrics"]["jobs_cancelled"] == 1
        # The persisted state machine agrees.
        record = [
            r for r in service.store.iter_jobs()
            if r.job_id == cancelled["job_id"]
        ]
        assert record and record[0].state == "cancelled"
        return None

    run_with_server(scenario, tmp_path, sock_dir, pool_size=1)


def test_protocol_errors_do_not_drop_the_connection(tmp_path, sock_dir):
    async def scenario(service, sock):
        def run():
            with ServeClient(socket_path=sock) as client:
                errors = []
                for message in (
                    {"op": "no-such-op"},
                    {"op": "job", "job_id": "missing"},
                    {"op": "submit", "job": {"kind": "bogus"}},
                ):
                    try:
                        client.request(message)
                    except ServiceError as exc:
                        errors.append(str(exc))
                # The same connection still works afterwards.
                return errors, client.status()

        errors, status = await asyncio.to_thread(run)
        assert len(errors) == 3
        assert "unknown op" in errors[0]
        assert "unknown job id" in errors[1]
        assert "unknown job kind" in errors[2]
        assert status["metrics"]["jobs_accepted"] == 0
        return None

    run_with_server(scenario, tmp_path, sock_dir)


def test_in_process_resume_replays_and_requeues(tmp_path, sock_dir):
    """A second service over the same store replays done jobs and
    re-runs jobs persisted in a non-terminal state."""
    done_job = coverage_job()

    async def first_life(service, sock):
        def run():
            with ServeClient(socket_path=sock) as client:
                return client.submit(done_job, wait=True)

        response = await asyncio.to_thread(run)
        assert response["state"] == "done"
        return response

    original = run_with_server(first_life, tmp_path, sock_dir)

    # Fake a crash mid-job: persist a second request left "queued".
    store = JobStore(tmp_path / "jobs")
    pending = JobRequest.from_dict(
        JobRequest.build(
            "verify", NETWORK, strategy="binary", prop="sorter"
        ).to_dict()
    )
    interrupted_id = store.create(
        pending, pending.content_key(("bitpacked", 1, None, True))
    )

    async def second_life(service, sock):
        def run():
            with ServeClient(socket_path=sock) as client:
                replay = client.submit(done_job, wait=True)
                rerun = client.result(interrupted_id, wait=True)
                return replay, rerun, client.status(), client.jobs()

        replay, rerun, status, jobs = await asyncio.to_thread(run)
        assert replay["deduped"] is True
        assert replay["job_id"] == original["job_id"]
        assert replay["result_json"] == original["result_json"]
        assert rerun["state"] == "done"
        assert status["metrics"]["jobs_resumed"] == 1
        assert status["metrics"]["jobs_replayed"] == 1
        assert status["metrics"]["jobs_executed"] == 1  # only the rerun
        assert len(jobs) == 2
        return None

    run_with_server(second_life, tmp_path, sock_dir)


def test_dunder_main_serves_until_shutdown(tmp_path, sock_dir, capsys):
    from repro.serve.__main__ import build_parser, main

    sock = str(sock_dir / "serve.sock")
    codes: list[int] = []
    thread = threading.Thread(
        target=lambda: codes.append(
            main(
                [
                    "--socket", sock, "--jobs", str(tmp_path / "jobs"),
                    "--engine", "bitpacked", "--pool", "1",
                ]
            )
        )
    )
    thread.start()
    try:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not os.path.exists(sock):
            time.sleep(0.05)
        with ServeClient(socket_path=sock) as client:
            response = client.submit(coverage_job(), wait=True)
            assert response["state"] == "done"
            client.shutdown()
    finally:
        thread.join(timeout=30)
    assert codes == [0]
    assert "listening" in capsys.readouterr().out
    # The endpoint group is mutually exclusive and required.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--socket", sock, "--port", "1"])
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_serve_and_client_argument_validation(tmp_path):
    service = VerificationService(tmp_path / "jobs")
    with pytest.raises(ServiceError):
        asyncio.run(serve(service))
    with pytest.raises(ServiceError):
        ServeClient()
    with pytest.raises(ServiceError):
        VerificationService(tmp_path / "jobs", pool_size=0)


# ----------------------------------------------------------------------
# CLI subcommands: serve / submit / status
# ----------------------------------------------------------------------
def test_cli_serve_submit_status_round_trip(tmp_path, sock_dir, capsys):
    sock = str(sock_dir / "serve.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-c",
            "import sys; from repro.cli import main; sys.exit(main())",
            "serve", "--socket", sock, "--jobs", str(tmp_path / "jobs"),
            "--engine", "bitpacked", "--pool", "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert "listening" in line, (line, proc.stderr.read())

        submit_args = [
            "submit", "--socket", sock, "--kind", "fault-coverage",
            "--n", "8", "--construct", "batcher", "--strategy", "binary",
        ]
        assert cli_main(submit_args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["state"] == "done"
        assert first["deduped"] is False
        report = ServeClient.decode_result(first)
        assert report.coverage > 0.9

        # The identical submission deduplicates against the stored job.
        assert cli_main(submit_args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["deduped"] is True
        assert second["result_json"] == first["result_json"]

        assert cli_main(["status", "--socket", sock]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["metrics"]["jobs_deduped"] == 1

        assert (
            cli_main(["status", "--socket", sock, "--job", first["job_id"]])
            == 0
        )
        job_view = json.loads(capsys.readouterr().out)
        assert job_view["state"] == "done"

        with ServeClient(socket_path=sock) as client:
            client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def test_cli_submit_verify_job(tmp_path, sock_dir, capsys):
    sock = str(sock_dir / "serve.sock")

    async def scenario(service, sock_path):
        def run():
            code = cli_main(
                [
                    "submit", "--socket", sock_path, "--kind", "verify",
                    "--n", "8", "--construct", "batcher",
                    "--strategy", "binary",
                ]
            )
            return code

        assert await asyncio.to_thread(run) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["state"] == "done"
        assert ServeClient.decode_result(response).verdict is True
        return None

    sock_str = sock
    run_with_server(
        lambda service, _: scenario(service, sock_str), tmp_path, sock_dir
    )


# ----------------------------------------------------------------------
# Crash-resume (subprocess + SIGKILL)
# ----------------------------------------------------------------------
def start_server(sock: str, jobs: str, *extra: str) -> subprocess.Popen:
    """Boot ``python -m repro.serve`` and wait for its listening line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--socket", sock, "--jobs", jobs,
            "--engine", "bitpacked", "--pool", "1", *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()
    assert "listening" in line, (line, proc.stderr.read())
    return proc


def test_crash_resume_replays_finished_jobs_bit_identically(
    tmp_path, sock_dir
):
    sock = str(sock_dir / "serve.sock")
    jobs = str(tmp_path / "jobs")
    job = coverage_job()

    proc = start_server(sock, jobs)
    try:
        with ServeClient(socket_path=sock) as client:
            original = client.submit(job, wait=True)
            assert original["state"] == "done"
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    os.unlink(sock)

    proc = start_server(sock, jobs)
    try:
        with ServeClient(socket_path=sock) as client:
            replay = client.submit(job, wait=True)
            status = client.status()
            client.shutdown()
        # Answered from the job store: same id, same bytes, no compute.
        assert replay["deduped"] is True
        assert replay["job_id"] == original["job_id"]
        assert replay["result_json"] == original["result_json"]
        assert status["metrics"]["jobs_replayed"] == 1
        assert status["metrics"]["jobs_executed"] == 0
        assert status["metrics"]["jobs_resumed"] == 0
        # The SimulationStats counters stay at zero for the replay.
        assert all(
            status["simulation"][name] == 0 for name in SIMULATION_COUNTERS
        )
    finally:
        proc.wait(timeout=30)


def test_crash_resume_requeues_interrupted_jobs(tmp_path, sock_dir):
    sock = str(sock_dir / "serve.sock")
    jobs = str(tmp_path / "jobs")

    proc = start_server(sock, jobs)
    try:
        with ServeClient(socket_path=sock) as client:
            submitted = client.submit(slow_job(), wait=False)
            job_id = submitted["job_id"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.job(job_id)["state"] == "running":
                    break
                time.sleep(0.05)
            else:
                pytest.fail("job never reached running")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    os.unlink(sock)

    # The persisted state survived as non-terminal.
    persisted = json.loads(
        (Path(jobs) / job_id / "status.json").read_text()
    )
    assert persisted["state"] in ("queued", "running")

    proc = start_server(sock, jobs)
    try:
        with ServeClient(socket_path=sock) as client:
            rerun = client.result(job_id, wait=True)
            status = client.status()
            client.shutdown()
        assert rerun["state"] == "done"
        assert rerun["result_json"]
        assert status["metrics"]["jobs_resumed"] == 1
        assert status["metrics"]["jobs_executed"] == 1
        assert status["simulation"]["faults"] > 0
    finally:
        proc.wait(timeout=30)
