"""Fault dictionaries, diagnostic resolution and adaptive test ordering.

The diagnosis layer is pure post-processing of the detection matrix, so
its pinning test is simple: dictionaries built from any engine / cache
path must be identical (the matrices already are, per the differential
oracles in ``test_faults.py``), and the greedy adaptive order must reach
the same equivalence-class partition as the full vector set.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np
import pytest
from strategies import criteria, networks

import repro.api as api
from repro.constructions import batcher_sorting_network
from repro.core import all_binary_words_array
from repro.faults import (
    FaultDictionary,
    adaptive_test_order,
    build_fault_dictionary,
    enumerate_model_faults,
    enumerate_single_faults,
    fault_dictionary_from_matrix,
    fault_detection_matrix,
)
from repro.testsets import sorting_binary_test_set


def partition_of(matrix: np.ndarray, columns) -> set[frozenset[int]]:
    """The fault partition induced by observing only ``columns``."""
    groups: dict[bytes, set[int]] = {}
    sub = matrix[:, list(columns)]
    for index, row in enumerate(sub):
        groups.setdefault(row.tobytes(), set()).add(index)
    return {frozenset(g) for g in groups.values()}


class TestFaultDictionary:
    def test_groups_rows_by_signature(self):
        matrix = np.array(
            [[1, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 0]], dtype=bool
        )
        faults = ["a", "b", "c", "d"]
        dictionary = fault_dictionary_from_matrix(faults, matrix)
        assert dictionary.num_faults == 4
        assert dictionary.num_classes == 3
        assert dictionary.classes[0] == ("a", "b")
        assert dictionary.lookup(np.array([1, 0, 0], dtype=bool)) == ("a", "b")
        assert dictionary.lookup(matrix[2].tobytes()) == ("c",)
        # Unknown signature: no candidates.
        assert dictionary.lookup(np.array([1, 1, 1], dtype=bool)) == ()

    def test_resolution_report(self):
        matrix = np.array(
            [[1, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 0]], dtype=bool
        )
        res = fault_dictionary_from_matrix(list("abcd"), matrix).resolution()
        assert res.num_faults == 4
        assert res.num_classes == 3
        assert res.singleton_classes == 2
        assert res.max_class_size == 2
        assert res.undetected_faults == 1  # "d" has the all-zero signature
        assert res.resolution == pytest.approx(3 / 4)
        assert not res.fully_resolved

    def test_empty_universe_is_fully_resolved(self):
        dictionary = fault_dictionary_from_matrix(
            [], np.zeros((0, 5), dtype=bool)
        )
        res = dictionary.resolution()
        assert res.resolution == 1.0
        assert res.fully_resolved

    @given(networks(min_lines=3, max_lines=6, max_size=10), criteria)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_dictionary_identical_across_engines_and_cache(
        self, network, criterion
    ):
        faults = enumerate_single_faults(network)
        vectors = all_binary_words_array(network.n_lines)
        baseline = build_fault_dictionary(
            network, faults, vectors, criterion=criterion, engine="vectorized"
        )
        packed = build_fault_dictionary(
            network, faults, vectors, criterion=criterion, engine="bitpacked"
        )
        assert isinstance(baseline, FaultDictionary)
        assert packed.signatures == baseline.signatures
        assert packed.classes == baseline.classes
        with api.Session(engine="bitpacked", cache=True) as session:
            for _ in range(2):  # second round answered from the store
                result = session.diagnose(
                    network, faults, vectors, criterion=criterion
                )
                assert result.dictionary.signatures == baseline.signatures
                assert result.dictionary.classes == baseline.classes
                assert result.resolution == baseline.resolution()


class TestAdaptiveTestOrder:
    def test_reaches_the_full_partition_greedily(self):
        network = batcher_sorting_network(5)
        faults = enumerate_single_faults(network)
        vectors = all_binary_words_array(5)
        matrix = fault_detection_matrix(network, faults, vectors)
        order = adaptive_test_order(matrix)
        assert len(order) <= matrix.shape[1]
        assert len(set(order)) == len(order)
        full = partition_of(matrix, range(matrix.shape[1]))
        assert partition_of(matrix, order) == full
        # Greedy means strictly refining: each prefix splits further.
        sizes = [len(partition_of(matrix, order[: i + 1])) for i in range(len(order))]
        assert sizes == sorted(sizes)
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_degenerate_matrices(self):
        assert adaptive_test_order(np.zeros((0, 4), dtype=bool)) == []
        assert adaptive_test_order(np.zeros((3, 0), dtype=bool)) == []
        # No column splits anything: empty order.
        assert adaptive_test_order(np.ones((3, 4), dtype=bool)) == []

    @given(
        st.integers(2, 16),
        st.integers(1, 12),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_order_always_recovers_the_full_partition(
        self, num_faults, num_vectors, seed
    ):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 2, size=(num_faults, num_vectors)).astype(bool)
        order = adaptive_test_order(matrix)
        assert partition_of(matrix, order) == partition_of(
            matrix, range(num_vectors)
        )


class TestSessionDiagnose:
    def test_result_fields_are_consistent(self):
        network = batcher_sorting_network(6)
        faults = enumerate_model_faults(network, "BridgingFault")
        vectors = sorting_binary_test_set(6)
        with api.Session(engine="bitpacked") as session:
            result = session.diagnose(network, faults, vectors)
        assert result.num_faults == len(faults)
        assert result.num_vectors == len(vectors)
        assert result.resolution is result.coverage.resolution
        assert result.coverage.total_faults == len(faults)
        assert result.dictionary.num_faults == len(faults)
        assert sum(len(c) for c in result.dictionary.classes) == len(faults)
        assert result.coverage.detected_faults == (
            len(faults) - result.resolution.undetected_faults
        )
        assert result.execution.seconds >= 0.0
        assert set(result.test_order) <= set(range(len(vectors)))

    def test_coverage_report_matches_fault_coverage_path(self):
        """``diagnose`` reports the same detection-side numbers as the
        constant-memory ``fault_coverage`` workload."""
        network = batcher_sorting_network(5)
        faults = enumerate_single_faults(network)
        vectors = sorting_binary_test_set(5)
        with api.Session(engine="bitpacked") as session:
            diagnosed = session.diagnose(network, faults, vectors)
            covered = session.fault_coverage(network, faults, vectors)
        assert diagnosed.coverage.coverage == covered.coverage
        assert diagnosed.coverage.detected_faults == covered.detected_faults
        assert dict(diagnosed.coverage.by_kind) == dict(covered.by_kind)
        assert covered.resolution is None  # matrix never materialised
