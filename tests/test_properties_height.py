"""Unit tests for the height-restricted network machinery (§3 of the paper)."""

from __future__ import annotations

import pytest

from repro.constructions import (
    batcher_sorting_network,
    bubble_sorting_network,
    insertion_sorting_network,
    odd_even_transposition_network,
)
from repro.core import ComparatorNetwork, random_height_limited_network
from repro.exceptions import TestSetError
from repro.properties import (
    de_bruijn_criterion_agrees,
    is_height_at_most,
    is_primitive,
    is_sorter,
    network_height,
    primitive_networks_of_size,
    primitive_sorter_by_reverse_permutation,
    sorts_reverse_permutation,
)


class TestHeightClassification:
    def test_primitive_networks_have_height_one(self):
        assert network_height(bubble_sorting_network(5)) == 1
        assert is_primitive(insertion_sorting_network(6))
        assert is_primitive(odd_even_transposition_network(7))

    def test_batcher_is_not_primitive(self):
        assert not is_primitive(batcher_sorting_network(8))
        assert network_height(batcher_sorting_network(8)) == 4

    def test_empty_network_is_primitive(self):
        assert is_primitive(ComparatorNetwork.identity(4))
        assert network_height(ComparatorNetwork.identity(4)) == 0

    def test_is_height_at_most(self):
        net = ComparatorNetwork.from_pairs(5, [(0, 2), (2, 3)])
        assert is_height_at_most(net, 2)
        assert not is_height_at_most(net, 1)
        with pytest.raises(TestSetError):
            is_height_at_most(net, -1)


class TestDeBruijnCriterion:
    def test_primitive_sorters_sort_the_reverse_permutation(self):
        for n in range(2, 7):
            assert primitive_sorter_by_reverse_permutation(bubble_sorting_network(n))

    def test_truncated_primitive_networks_fail_the_single_test(self):
        # Too few odd-even transposition rounds: not a sorter, and the
        # reverse permutation already witnesses it.
        for n in (4, 5, 6):
            net = odd_even_transposition_network(n, rounds=n - 2)
            assert not primitive_sorter_by_reverse_permutation(net)
            assert not is_sorter(net, strategy="binary")

    def test_criterion_rejected_for_non_primitive_networks(self, batcher8):
        with pytest.raises(TestSetError):
            primitive_sorter_by_reverse_permutation(batcher8)
        with pytest.raises(TestSetError):
            de_bruijn_criterion_agrees(batcher8)

    def test_de_bruijn_theorem_on_random_primitive_networks(self, rng):
        """The single reverse-permutation test decides sorting for height-1 networks."""
        for _ in range(30):
            size = int(rng.integers(0, 12))
            net = random_height_limited_network(5, size, 1, rng)
            assert de_bruijn_criterion_agrees(net)

    def test_reverse_permutation_is_necessary_but_not_sufficient_for_height_two(self, rng):
        """For height-2 networks, sorting the reverse permutation is NOT enough.

        This is exactly why the paper poses height-2 as an open problem: we
        exhibit a height-2 network that sorts the reverse permutation but is
        not a sorter, so no single-input test set can exist for height 2.
        """
        found = False
        for _ in range(300):
            net = random_height_limited_network(4, int(rng.integers(3, 7)), 2, rng)
            if sorts_reverse_permutation(net) and not is_sorter(net, strategy="binary"):
                found = True
                break
        assert found

    def test_exhaustive_de_bruijn_for_small_primitive_networks(self):
        for size in range(0, 4):
            for net in primitive_networks_of_size(4, size):
                assert de_bruijn_criterion_agrees(net)

    def test_primitive_enumeration_count(self):
        assert len(primitive_networks_of_size(4, 2)) == 9
        assert len(primitive_networks_of_size(5, 0)) == 1
