"""Scratch-plane arena: reuse semantics, bit-identity, stats accounting.

The tentpole guarantee of the arena PR: the allocation-free pruned engine
(`PlaneArena` + ``out=`` ufuncs) is bit-identical to both the unpruned
serial engines and the preserved PR-3 allocating path (``arena=False``) —
across repeated calls sharing one arena, mixed fault models, odd chunk
sizes and the 2-D shard grid.  Also the regression tests for the
`LineStuckFault` pruning-stats baseline off-by-one and the empty-error-dict
detection row.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.constructions import batcher_sorting_network
from repro.core import ComparatorNetwork
from repro.core.evaluation import all_binary_words_array
from repro.core.scratch import PlaneArena, comparator_scratch, shared_arena
from repro.faults import (
    CubeVectors,
    LineStuckFault,
    ReversedComparatorFault,
    SimulationStats,
    StuckPassFault,
    StuckSwapFault,
    enumerate_single_faults,
    fault_detection_any,
    fault_detection_matrix,
)
from repro.parallel import ExecutionConfig


@st.composite
def networks(draw, min_lines: int = 2, max_lines: int = 7, max_size: int = 12):
    n = draw(st.integers(min_lines, max_lines))
    size = draw(st.integers(0, max_size))
    comparators = []
    for _ in range(size):
        low = draw(st.integers(0, n - 2))
        high = draw(st.integers(low + 1, n - 1))
        comparators.append((low, high))
    return ComparatorNetwork.from_pairs(n, comparators)


odd_chunks = st.sampled_from([1, 3, 7, 63, 64, 65, 100])
criteria = st.sampled_from(["specification", "reference"])


# ----------------------------------------------------------------------
# PlaneArena mechanics
# ----------------------------------------------------------------------
def test_arena_slot_accounting():
    arena = PlaneArena(4, 8)
    assert arena.store.shape == (12, 8)
    total_free = len(arena._free)
    slot = arena.acquire()
    assert len(arena._free) == total_free - 1
    arena.plane(slot)[...] = 7
    arena.set_error(2, slot)
    assert arena.err_slot == {2: slot}
    assert list(arena.error_planes()) == [2]
    assert np.all(arena.error_planes()[2] == 7)
    # Replacing an error recycles the old slot.
    other = arena.acquire()
    arena.set_error(2, other)
    assert slot in arena._free
    arena.clear_error(2)
    assert arena.err_slot == {}
    assert len(arena._free) == total_free
    arena.clear_error(2)  # idempotent
    assert len(arena._free) == total_free


def test_arena_reset_restores_all_slots():
    arena = PlaneArena(3, 4)
    for line in range(3):
        arena.set_error(line, arena.acquire())
    arena.acquire()
    arena.reset()
    assert arena.err_slot == {}
    assert len(arena._free) == arena.store.shape[0]
    assert np.all(arena.zero == 0)


def test_arena_ensure_reallocates_only_on_geometry_change():
    arena = PlaneArena(4, 8)
    store = arena.store
    assert arena.ensure(4, 8, arena.dtype) is arena
    assert arena.store is store  # same geometry: pure reset
    arena.ensure(5, 16, arena.dtype)
    assert arena.store.shape == (14, 16)
    assert arena.state.shape == (5, 16)


def test_shared_arena_is_cached_per_geometry():
    a = shared_arena(6, 32)
    b = shared_arena(6, 32)
    assert a is b
    c = shared_arena(6, 64)
    assert c is not a
    scratch = comparator_scratch(32)
    assert scratch.shape == (32,)
    assert scratch is comparator_scratch(32)


# ----------------------------------------------------------------------
# Arena reuse is bit-identical (tentpole cross-check)
# ----------------------------------------------------------------------
@given(networks(), criteria, odd_chunks)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_shared_arena_reuse_bit_identical(network, criterion, chunk):
    """Repeated calls sharing one arena, mixed fault models, odd chunks and
    the allocating legacy path all reproduce the unpruned serial matrix."""
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    vectors = all_binary_words_array(network.n_lines)
    reference = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="vectorized"
    )
    config = ExecutionConfig(max_workers=1, chunk_size=chunk)
    # Deliberately mis-sized: the first call must adapt it, later calls
    # (and the streamed tail chunk) must reuse it.
    arena = PlaneArena(1, 1)
    for _ in range(2):
        pruned = fault_detection_matrix(
            network, faults, vectors, criterion=criterion, engine="bitpacked",
            config=config, prune=True, arena=arena,
        )
        assert np.array_equal(pruned, reference)
    legacy = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="bitpacked",
        config=config, prune=True, arena=False,
    )
    assert np.array_equal(legacy, reference)
    detected = fault_detection_any(
        network, faults, CubeVectors(network.n_lines), criterion=criterion,
        engine="bitpacked", config=config, prune=True, arena=arena,
    )
    assert np.array_equal(detected, reference.any(axis=1))


@given(networks(min_lines=3), criteria)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_arena_and_alloc_paths_agree_on_stats(network, criterion):
    """The arena and allocating paths count the exact same pruning work."""
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    vectors = all_binary_words_array(network.n_lines)
    stats_arena = SimulationStats()
    stats_alloc = SimulationStats()
    arena_matrix = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="bitpacked",
        prune=True, stats=stats_arena,
    )
    alloc_matrix = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine="bitpacked",
        prune=True, stats=stats_alloc, arena=False,
    )
    assert np.array_equal(arena_matrix, alloc_matrix)
    assert stats_arena.counts() == stats_alloc.counts()


@pytest.mark.parametrize("arena", [None, False])
def test_grid_sharded_matrix_with_and_without_arena(arena):
    """The 2-D (faults × vector-chunks) process grid honours the arena knob
    and stays bit-identical to the serial vectorised engine."""
    network = batcher_sorting_network(7)
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    reference = fault_detection_matrix(
        network, faults, all_binary_words_array(7), engine="vectorized"
    )
    config = ExecutionConfig(max_workers=2, chunk_size=48)
    grid = fault_detection_matrix(
        network, faults, CubeVectors(7), engine="bitpacked", config=config,
        prune=True, arena=arena,
    )
    assert np.array_equal(grid, reference)
    detected = fault_detection_any(
        network, faults, CubeVectors(7), engine="bitpacked", config=config,
        prune=True, arena=arena,
    )
    assert np.array_equal(detected, reference.any(axis=1))


# ----------------------------------------------------------------------
# Pruning-stats baseline regression (the LineStuckFault off-by-one)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("use_arena", [None, False])
def test_stats_baseline_per_fault_model(use_arena):
    """`evaluated + pruned` equals the analytic no-pruning baseline for
    every fault model — the LineStuckFault baseline used to be off by one
    stage (`size - max(stage - 1, 0)` for a loop that can evaluate at most
    `size - stage` stages), inflating `prune_ratio`."""
    network = batcher_sorting_network(4)
    size = network.size
    vectors = all_binary_words_array(4)
    n_blocks = 1  # 16 words -> one uint64 block
    cases = [
        (StuckPassFault(2), (size - 3) * n_blocks),
        (StuckSwapFault(2), (size - 3) * n_blocks),
        (ReversedComparatorFault(2), (size - 2) * n_blocks),
        (LineStuckFault(line=1, stage=0, value=1), size * n_blocks),
        (LineStuckFault(line=1, stage=3, value=0), (size - 3) * n_blocks),
        (LineStuckFault(line=1, stage=size, value=1), 0),
    ]
    for fault, baseline in cases:
        stats = SimulationStats()
        fault_detection_matrix(
            network, [fault], vectors, engine="bitpacked", prune=True,
            stats=stats, arena=use_arena,
        )
        assert stats.total_stage_blocks == baseline, fault
        assert (
            stats.evaluated_stage_blocks + stats.pruned_stage_blocks == baseline
        )


@pytest.mark.parametrize("use_arena", [None, False])
def test_never_converging_fault_reports_zero_pruned(use_arena):
    """A stuck line that keeps every stage dirty evaluates the full suffix:
    nothing was pruned, so `pruned_stage_blocks` must be exactly 0."""
    network = ComparatorNetwork.from_pairs(2, [(0, 1), (0, 1), (0, 1)])
    fault = LineStuckFault(line=0, stage=1, value=1)
    stats = SimulationStats()
    fault_detection_matrix(
        network, [fault], all_binary_words_array(2), engine="bitpacked",
        prune=True, stats=stats, arena=use_arena,
    )
    assert stats.evaluated_stage_blocks == 2  # stages 1 and 2, one block
    assert stats.pruned_stage_blocks == 0
    assert stats.converged_faults == 0


# ----------------------------------------------------------------------
# _row_from_errors on an empty error dict (defensive satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("with_arena", [False, True])
def test_row_from_errors_empty_dict(with_arena):
    from repro.faults.simulation import (
        PrefixStates,
        _detection_row,
        _pack_vectors,
        _row_from_errors,
        _row_from_errors_alloc,
    )

    network = batcher_sorting_network(4)
    packed = _pack_vectors(network, all_binary_words_array(4))
    prefix = PrefixStates.build(network, packed)
    reference = prefix.reference()
    pad_mask = reference.pad_mask()
    if with_arena:
        arena = PlaneArena(4, packed.n_blocks)

        def row_fn(criterion):
            return _row_from_errors(reference, {}, criterion, pad_mask, arena)

    else:

        def row_fn(criterion):
            return _row_from_errors_alloc(reference, {}, criterion, pad_mask)

    row = row_fn("reference")
    assert row.shape == (packed.num_words,)
    assert not row.any()
    # Under "specification" an empty dict degenerates to the reference's
    # own violation row (all-false for a sorter).
    spec_row = row_fn("specification")
    assert np.array_equal(
        spec_row, _detection_row(reference, reference, "specification")
    )
