"""Unit tests for :mod:`repro.core.network`."""

from __future__ import annotations

import pytest

from repro.core import Comparator, ComparatorNetwork
from repro.exceptions import (
    InputLengthError,
    InvalidComparatorError,
    LineCountError,
)
from repro.words import all_binary_words, complement_reverse


class TestConstruction:
    def test_from_pairs(self, fig1_network):
        assert fig1_network.n_lines == 4
        assert fig1_network.size == 4
        assert fig1_network.comparators[0] == Comparator(0, 2)

    def test_identity_network_is_empty(self):
        net = ComparatorNetwork.identity(5)
        assert net.size == 0
        assert net.apply((3, 1, 2, 5, 4)) == (3, 1, 2, 5, 4)

    def test_zero_lines_rejected(self):
        with pytest.raises(LineCountError):
            ComparatorNetwork(0)

    def test_comparator_out_of_range_rejected(self):
        with pytest.raises(InvalidComparatorError):
            ComparatorNetwork(3, [(0, 3)])

    def test_accepts_pairs_and_comparators_mixed(self):
        net = ComparatorNetwork(3, [Comparator(0, 1), (1, 2)])
        assert net.size == 2

    def test_equality_and_hash(self, fig1_network):
        clone = ComparatorNetwork.from_pairs(4, [(0, 2), (1, 3), (0, 1), (2, 3)])
        assert clone == fig1_network
        assert hash(clone) == hash(fig1_network)
        assert clone != fig1_network.extended([(1, 2)])


class TestEvaluation:
    def test_fig1_example(self, fig1_network):
        # The paper's Fig. 1 trace: (4 1 3 2) ends as (1 3 2 4) after the
        # four transcribed comparators.
        assert fig1_network((4, 1, 3, 2)) == (1, 3, 2, 4)

    def test_completed_fig1_sorts_the_example(self, four_sorter):
        assert four_sorter((4, 1, 3, 2)) == (1, 2, 3, 4)

    def test_wrong_input_length_raises(self, fig1_network):
        with pytest.raises(InputLengthError):
            fig1_network.apply((1, 2, 3))

    def test_apply_accepts_lists_and_arrays(self, four_sorter):
        import numpy as np

        assert four_sorter.apply([2, 1, 4, 3]) == (1, 2, 3, 4)
        assert four_sorter.apply(np.array([2, 1, 4, 3])) == (1, 2, 3, 4)

    def test_trace_has_one_state_per_comparator_plus_input(self, four_sorter):
        states = four_sorter.trace((4, 3, 2, 1))
        assert len(states) == four_sorter.size + 1
        assert states[0] == (4, 3, 2, 1)
        assert states[-1] == (1, 2, 3, 4)

    def test_standard_network_never_unsorts_sorted_input(self, batcher8):
        for word in [(0,) * 8, (1,) * 8, (0, 0, 0, 1, 1, 1, 1, 1)]:
            assert batcher8.apply(word) == word

    def test_duplicate_values_handled(self, four_sorter):
        assert four_sorter((2, 2, 1, 1)) == (1, 1, 2, 2)


class TestStructure:
    def test_then_concatenates(self, fig1_network):
        tail = ComparatorNetwork.from_pairs(4, [(1, 2)])
        combined = fig1_network.then(tail)
        assert combined.size == 5
        assert combined.comparators[-1] == Comparator(1, 2)

    def test_add_operator(self, fig1_network):
        assert (fig1_network + ComparatorNetwork.identity(4)).size == 4

    def test_then_width_mismatch_raises(self, fig1_network):
        with pytest.raises(LineCountError):
            fig1_network.then(ComparatorNetwork.identity(5))

    def test_prefix(self, fig1_network):
        assert fig1_network.prefix(2).size == 2
        assert fig1_network.prefix(0).size == 0

    def test_without_comparator(self, fig1_network):
        smaller = fig1_network.without_comparator(0)
        assert smaller.size == 3
        assert smaller.comparators[0] == Comparator(1, 3)

    def test_with_comparator_replaced(self, fig1_network):
        replaced = fig1_network.with_comparator_replaced(0, Comparator(0, 1))
        assert replaced.comparators[0] == Comparator(0, 1)
        assert fig1_network.comparators[0] == Comparator(0, 2)  # original intact

    def test_on_lines_embedding(self):
        small = ComparatorNetwork.from_pairs(2, [(0, 1)])
        embedded = small.on_lines(5, [1, 4])
        assert embedded.n_lines == 5
        assert embedded.comparators[0] == Comparator(1, 4)

    def test_on_lines_requires_increasing_targets(self):
        small = ComparatorNetwork.from_pairs(2, [(0, 1)])
        with pytest.raises(LineCountError):
            small.on_lines(5, [4, 1])

    def test_on_lines_wrong_count_raises(self):
        small = ComparatorNetwork.from_pairs(2, [(0, 1)])
        with pytest.raises(LineCountError):
            small.on_lines(5, [0, 1, 2])

    def test_shifted(self):
        net = ComparatorNetwork.from_pairs(2, [(0, 1)]).shifted(3, n_lines=6)
        assert net.n_lines == 6
        assert net.comparators[0] == Comparator(3, 4)

    def test_height(self, fig1_network, bubble5):
        assert fig1_network.height == 2
        assert bubble5.height == 1
        assert ComparatorNetwork.identity(3).height == 0

    def test_lines_touched(self, fig1_network):
        assert fig1_network.lines_touched() == (0, 1, 2, 3)

    def test_getitem_and_slicing(self, fig1_network):
        assert fig1_network[0] == Comparator(0, 2)
        assert fig1_network[:2].size == 2
        assert isinstance(fig1_network[:2], ComparatorNetwork)


class TestDuality:
    def test_dual_intertwines_complement_reverse(self, fig1_network):
        dual = fig1_network.dual()
        for word in all_binary_words(4):
            assert dual.apply(complement_reverse(word)) == complement_reverse(
                fig1_network.apply(word)
            )

    def test_dual_is_involution(self, batcher8):
        assert batcher8.dual().dual() == batcher8

    def test_dual_preserves_size_and_standardness(self, batcher8):
        dual = batcher8.dual()
        assert dual.size == batcher8.size
        assert dual.standard

    def test_dual_of_sorter_is_sorter(self, four_sorter):
        from repro.properties import is_sorter

        assert is_sorter(four_sorter.dual(), strategy="binary")

    def test_relabelled_identity_is_noop(self, four_sorter):
        assert four_sorter.relabelled(lambda i: i) == four_sorter
