"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constructions import (
    batcher_sorting_network,
    bubble_sorting_network,
    optimal_sorting_network,
)
from repro.core import ComparatorNetwork


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator shared by randomised tests."""
    return np.random.default_rng(20260614)


@pytest.fixture
def fig1_network() -> ComparatorNetwork:
    """The paper's Fig. 1 network ``[1,3][2,4][1,2][3,4]`` (0-indexed here)."""
    return ComparatorNetwork.from_pairs(4, [(0, 2), (1, 3), (0, 1), (2, 3)])


@pytest.fixture
def four_sorter() -> ComparatorNetwork:
    """The optimal 5-comparator sorting network on 4 lines."""
    return optimal_sorting_network(4)


@pytest.fixture
def batcher8() -> ComparatorNetwork:
    """Batcher's odd-even merge-sort on 8 lines."""
    return batcher_sorting_network(8)


@pytest.fixture
def bubble5() -> ComparatorNetwork:
    """Bubble-sort (primitive) network on 5 lines."""
    return bubble_sorting_network(5)


@pytest.fixture
def non_sorter_4() -> ComparatorNetwork:
    """A 4-line network that is not a sorter (missing final exchange)."""
    return ComparatorNetwork.from_pairs(4, [(0, 2), (1, 3), (0, 1), (2, 3)])
