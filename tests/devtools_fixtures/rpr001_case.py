"""RPR001 fixture: allocating numpy inside ``@allocation_free`` bodies."""

import numpy as np

from repro.core.scratch import allocation_free


@allocation_free
def bad(a, out):
    tmp = np.zeros(a.shape, dtype=a.dtype)  # EXPECT np.zeros allocates
    np.bitwise_and(a, a, out=out)
    masked = np.bitwise_or(a, a)  # EXPECT ufunc without out=
    bxor = np.bitwise_xor
    r = bxor(a, a)  # EXPECT aliased ufunc without out=
    s = bxor(a, a, out=out)
    c = a.copy()  # EXPECT .copy() allocates
    d = a.astype(np.uint64)  # EXPECT .astype() allocates
    e = a.astype(np.uint64, copy=False)
    np.copyto(out, a)
    quiet = np.empty(4)  # repro: noqa RPR001 — suppressed on purpose
    return tmp, masked, r, s, c, d, e, quiet


@allocation_free
def clean(a, out, scratch):
    np.invert(a, out=scratch)
    np.bitwise_and(a, scratch, out=out)
    out.fill(0)
    return out


def undecorated(a):
    return np.zeros(a.shape)
