"""RPR003 fixture: deprecated execution kwargs at shim call sites."""


def run(repro, network, faults, vectors, tests):
    a = repro.is_sorter(network, engine="bitpacked")  # EXPECT engine= kwarg
    b = repro.fault_coverage(network, faults, vectors, config=None, prune=True)  # EXPECT two legacy kwargs
    c = repro.is_sorter(network)
    d = repro.is_selector(network, 2, strategy="testset")
    e = repro.network_passes_test_set(network, tests, arena=None)  # EXPECT arena= kwarg
    f = repro.is_merger(network, engine="scalar")  # repro: noqa RPR003 — suppressed on purpose
    return a, b, c, d, e, f
