"""RPR002 fixture: hard-coded engine-name collections."""

ENGINES = ("scalar", "vectorized", "bitpacked")  # EXPECT tuple of engine names
FAST = ["vectorized", "bitpacked"]  # EXPECT list of engine names
LONELY = ("bitpacked",)
UNRELATED = ("alpha", "beta")
QUIET = {"scalar", "vectorized"}  # repro: noqa RPR002 — suppressed on purpose


def pick(flag):
    chosen = ["scalar", "bitpacked"]  # EXPECT list inside a function
    return chosen if flag else None
