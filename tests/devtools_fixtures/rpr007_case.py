"""RPR007 fixture: raw wall-clock reads outside ``repro.observe``."""

import time
import time as clk
from time import monotonic, perf_counter
from time import perf_counter as pc


def dotted_read():
    return time.perf_counter()  # EXPECT dotted module call


def dotted_alias_read():
    return clk.time_ns()  # EXPECT through a module alias


def from_import_read():
    start = monotonic()  # EXPECT from-import name
    return perf_counter() - start  # EXPECT second from-import name


def renamed_from_import_read():
    return pc()  # EXPECT renamed from-import


def local_alias_read():
    clock = time.perf_counter
    return clock()  # EXPECT local alias call


def sleeping_is_fine():
    time.sleep(0.01)
    return time.strftime("%H:%M")


def shadowed_name_is_fine(perf_log):
    return perf_log.flush()


def suppressed_read():
    return time.monotonic()  # repro: noqa RPR007 — suppressed on purpose
