"""RPR004 fixture: fork/pickle hazards on worker-shipped objects."""

from threading import Lock


class BadTask:
    cache = {}  # EXPECT shared mutable class attribute

    def __init__(self, path):
        self.lock = Lock()  # EXPECT lock stored on task instance
        self.fh = open(path)  # EXPECT open file stored on task instance
        self.items = []

    def __call__(self):
        return len(self.items)


class PlainHelper:
    def __init__(self):
        self.lock = Lock()


class QuietTask:
    registry = {}  # repro: noqa RPR004 — suppressed on purpose

    def __call__(self):
        return 0


def ship(pool, data):
    return pool.submit(lambda: data)  # EXPECT lambda does not pickle
