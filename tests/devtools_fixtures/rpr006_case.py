"""RPR006 fixture: direct ``PrefixStates.build`` calls outside the cache."""

from repro.cache import acquire_prefix_states
from repro.faults import simulation
from repro.faults.simulation import PrefixStates


def naive(network, packed):
    return PrefixStates.build(network, packed)  # EXPECT bare-name receiver


def qualified(network, packed):
    return simulation.PrefixStates.build(network, packed)  # EXPECT dotted receiver


def sanctioned(network, packed, cache, token):
    return acquire_prefix_states(network, packed, cache=cache, token=token)


def constructor_is_fine(deltas, state, codes):
    return PrefixStates(deltas, state, codes)


def other_builders(builder):
    return builder.build()


def suppressed(network, packed):
    return PrefixStates.build(network, packed)  # repro: noqa RPR006 — suppressed on purpose
