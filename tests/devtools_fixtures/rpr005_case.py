"""RPR005 fixture: docstring presence and numpydoc section underlines."""


def documented(x):
    """Double *x*.

    Parameters
    ----------
    x : int
        The input.

    Returns
    -------
    int
        Twice the input.
    """
    return 2 * x


def undocumented(x):  # EXPECT missing docstring
    return x


def bad_underline(x):  # EXPECT Parameters header not dash-underlined
    """Docstring with a malformed section.

    Parameters
    ==========
    x : int
        The input.
    """
    return x


def _private(x):
    return x


def quiet(x):  # repro: noqa RPR005 — suppressed on purpose
    return x


class Thing:
    """A documented class."""

    def method(self):  # EXPECT missing method docstring
        return 1

    def _hidden(self):
        return 2
