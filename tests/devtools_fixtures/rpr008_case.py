"""RPR008 fixture: blocking calls inside ``async def`` bodies.

Marked lines must be flagged; every other line must stay silent — in
particular nested synchronous ``def`` bodies (the sanctioned home of
blocking work) and *uncalled* callables handed to an executor.
"""

import asyncio
import subprocess
import time
from subprocess import check_output
from time import sleep as pause


async def blocking_everywhere(session, network, vectors, faults):
    time.sleep(0.1)  # EXPECT
    pause(0.1)  # EXPECT
    subprocess.run(["true"])  # EXPECT
    check_output(["true"])  # EXPECT
    verdict = session.verify(network, "sorter")  # EXPECT
    report = session.fault_coverage(network, faults, vectors)  # EXPECT
    if verdict.ok:
        return session.passes_test_set(network, vectors)  # EXPECT
    return report


async def conditional_blocking(session, network, faults, vectors):
    try:
        return session.fault_matrix(network, faults, vectors)  # EXPECT
    except ValueError:
        return session.diagnose(network, faults, vectors)  # EXPECT


async def delegating_is_fine(loop, pool, session, network, vectors):
    def work():
        # Blocking work parked in a sync def, shipped to a thread: the
        # pattern the rule exists to steer code toward.
        time.sleep(0.01)
        return session.fault_coverage(network, vectors)

    await asyncio.sleep(0.01)
    first = await loop.run_in_executor(pool, work)
    second = await asyncio.to_thread(session.verify, network, "sorter")
    return first, second


def synchronous_context_is_fine(session, network, vectors):
    time.sleep(0.01)
    subprocess.run(["true"])
    return session.passes_test_set(network, vectors)
