"""Unit tests for the selector and merger property checkers."""

from __future__ import annotations

import pytest

from repro.constructions import (
    batcher_merging_network,
    bubble_selection_network,
    pruned_selection_network,
    zipper_merging_network,
)
from repro.core import ComparatorNetwork
from repro.exceptions import TestSetError
from repro.properties import (
    MERGER_STRATEGIES,
    SELECTOR_STRATEGIES,
    all_sorted_half_pairs,
    find_merging_counterexample,
    find_selection_counterexample,
    is_merger,
    is_selector,
    merges_correctly,
    permutation_merge_inputs,
    selects_correctly,
)
from repro.testsets import near_merger, near_selector


class TestSelectorChecker:
    @pytest.mark.parametrize("strategy", SELECTOR_STRATEGIES)
    def test_strategies_accept_real_selectors(self, strategy):
        assert is_selector(bubble_selection_network(6, 2), 2, strategy=strategy)
        assert is_selector(pruned_selection_network(6, 3), 3, strategy=strategy)

    @pytest.mark.parametrize("strategy", SELECTOR_STRATEGIES)
    def test_strategies_reject_non_selectors(self, strategy):
        # One bubble pass is a (1, n)-selector but not a (2, n)-selector.
        network = bubble_selection_network(5, 1)
        assert not is_selector(network, 2, strategy=strategy)

    @pytest.mark.parametrize("strategy", SELECTOR_STRATEGIES)
    def test_strategies_reject_lemma23_adversaries(self, strategy):
        sigma = (1, 0, 1, 1, 1)  # one zero => member of T_1
        adversary = near_selector(sigma, 1)
        assert not is_selector(adversary, 1, strategy=strategy)

    def test_a_sorter_selects_for_every_k(self, batcher8):
        for k in range(1, 9):
            assert is_selector(batcher8, k, strategy="testset")

    def test_k_out_of_range(self, batcher8):
        with pytest.raises(TestSetError):
            is_selector(batcher8, 0)
        with pytest.raises(TestSetError):
            is_selector(batcher8, 9)

    def test_unknown_strategy(self, batcher8):
        with pytest.raises(TestSetError):
            is_selector(batcher8, 2, strategy="guess")

    def test_strategies_agree_on_random_networks(self, rng):
        from repro.core import random_network

        for _ in range(10):
            net = random_network(5, 6, rng)
            verdicts = {
                is_selector(net, 2, strategy=s) for s in SELECTOR_STRATEGIES
            }
            assert len(verdicts) == 1

    def test_selects_correctly_on_general_words(self):
        selector = bubble_selection_network(5, 2)
        assert selects_correctly(selector, 2, (9, 3, 7, 1, 5))
        assert selects_correctly(selector, 2, (2, 2, 1, 1, 3))

    def test_selection_counterexample(self):
        network = bubble_selection_network(5, 1)
        witness = find_selection_counterexample(network, 2)
        assert witness is not None
        assert not selects_correctly(network, 2, witness)

    def test_selection_counterexample_none_for_selector(self):
        assert find_selection_counterexample(bubble_selection_network(5, 2), 2) is None


class TestMergerChecker:
    @pytest.mark.parametrize("strategy", MERGER_STRATEGIES)
    def test_strategies_accept_real_mergers(self, strategy):
        assert is_merger(batcher_merging_network(8), strategy=strategy)
        assert is_merger(zipper_merging_network(6), strategy=strategy)

    @pytest.mark.parametrize("strategy", MERGER_STRATEGIES)
    def test_strategies_reject_the_empty_network(self, strategy):
        assert not is_merger(ComparatorNetwork.identity(4), strategy=strategy)

    @pytest.mark.parametrize("strategy", MERGER_STRATEGIES)
    def test_strategies_reject_theorem25_adversaries(self, strategy):
        sigma = (0, 1, 0, 1)  # sorted halves, unsorted whole
        adversary = near_merger(sigma)
        assert not is_merger(adversary, strategy=strategy)

    def test_merger_requires_even_width(self):
        with pytest.raises(TestSetError):
            is_merger(ComparatorNetwork.identity(5))

    def test_unknown_strategy(self):
        with pytest.raises(TestSetError):
            is_merger(batcher_merging_network(4), strategy="guess")

    def test_strategies_agree_on_random_networks(self, rng):
        from repro.core import random_network

        for _ in range(10):
            net = random_network(6, 5, rng)
            verdicts = {is_merger(net, strategy=s) for s in MERGER_STRATEGIES}
            assert len(verdicts) == 1

    def test_merges_correctly_checks_input_legality(self):
        merger = batcher_merging_network(4)
        assert merges_correctly(merger, (0, 1, 0, 1))
        with pytest.raises(TestSetError):
            merges_correctly(merger, (1, 0, 0, 1))

    def test_merging_counterexample(self):
        witness = find_merging_counterexample(ComparatorNetwork.identity(6))
        assert witness is not None
        half = 3
        assert witness[:half] == tuple(sorted(witness[:half]))
        assert witness[half:] == tuple(sorted(witness[half:]))

    def test_merging_counterexample_none_for_merger(self):
        assert find_merging_counterexample(batcher_merging_network(6)) is None


class TestMergeInputEnumerations:
    def test_all_sorted_half_pairs_count(self):
        for n in (2, 4, 6, 8):
            assert len(all_sorted_half_pairs(n)) == (n // 2 + 1) ** 2

    def test_permutation_merge_inputs_count(self):
        import math

        for n in (2, 4, 6):
            assert len(permutation_merge_inputs(n)) == math.comb(n, n // 2)

    def test_permutation_merge_inputs_have_sorted_halves(self):
        for word in permutation_merge_inputs(6):
            assert list(word[:3]) == sorted(word[:3])
            assert list(word[3:]) == sorted(word[3:])

    def test_odd_n_rejected(self):
        with pytest.raises(TestSetError):
            all_sorted_half_pairs(5)
        with pytest.raises(TestSetError):
            permutation_merge_inputs(3)
