"""Tests for the ``repro-networks`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(
            ["verify", "--n", "4", "--network", "[1,2]", "--property", "sorter"]
        )
        assert args.command == "verify"
        assert args.n == 4

    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestVerifyCommand:
    def test_verify_sorter_yes(self, capsys):
        code = main(
            [
                "verify",
                "--n",
                "4",
                "--network",
                "[1,2][3,4][1,3][2,4][2,3]",
                "--property",
                "sorter",
            ]
        )
        assert code == 0
        assert "YES" in capsys.readouterr().out

    def test_verify_sorter_no(self, capsys):
        code = main(
            ["verify", "--n", "4", "--network", "[1,3][2,4][1,2][3,4]"]
        )
        assert code == 1
        assert "NO" in capsys.readouterr().out

    def test_verify_selector(self, capsys):
        # One bubble pass on three lines is a (1, 3)-selector.
        code = main(
            [
                "verify",
                "--n",
                "3",
                "--network",
                "[2,3][1,2]",
                "--property",
                "selector",
                "--k",
                "1",
            ]
        )
        assert code == 0

    def test_verify_merger(self, capsys):
        code = main(
            [
                "verify",
                "--n",
                "4",
                "--network",
                "[1,3][2,4][2,3]",
                "--property",
                "merger",
            ]
        )
        assert code == 0

    @pytest.mark.parametrize("engine", ["scalar", "vectorized", "bitpacked"])
    def test_verify_engines_agree(self, capsys, engine):
        code = main(
            [
                "verify",
                "--n",
                "4",
                "--network",
                "[1,2][3,4][1,3][2,4][2,3]",
                "--strategy",
                "binary",
                "--engine",
                engine,
            ]
        )
        assert code == 0
        assert f"engine={engine}" in capsys.readouterr().out

    def test_verify_construction_bitpacked(self, capsys):
        code = main(
            [
                "verify",
                "--n",
                "12",
                "--construct",
                "batcher",
                "--strategy",
                "binary",
                "--engine",
                "bitpacked",
            ]
        )
        assert code == 0
        assert "YES" in capsys.readouterr().out


class TestTestsetCommand:
    def test_sorting_binary_testset(self, capsys):
        assert main(["testset", "--property", "sorting", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "11 inputs" in out

    def test_selection_permutation_testset(self, capsys):
        assert (
            main(
                [
                    "testset",
                    "--property",
                    "selection",
                    "--n",
                    "5",
                    "--k",
                    "2",
                    "--model",
                    "permutation",
                ]
            )
            == 0
        )
        assert "9 inputs" in capsys.readouterr().out

    def test_merging_testset_with_limit(self, capsys):
        assert (
            main(
                ["testset", "--property", "merging", "--n", "8", "--limit", "3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "16 inputs" in out
        assert "more)" in out


class TestAdversaryCommand:
    def test_adversary_output(self, capsys):
        assert main(["adversary", "--sigma", "0110"]) == 0
        out = capsys.readouterr().out
        assert "H_sigma" in out
        assert "[" in out

    def test_adversary_with_diagram(self, capsys):
        assert main(["adversary", "--sigma", "10", "--diagram"]) == 0
        assert "line 0" in capsys.readouterr().out


class TestConstructAndExperiments:
    @pytest.mark.parametrize(
        "kind,n",
        [("batcher", 6), ("bose-nelson", 5), ("bubble", 4), ("merger", 6)],
    )
    def test_construct(self, capsys, kind, n):
        assert main(["construct", "--kind", kind, "--n", str(n)]) == 0
        assert "size=" in capsys.readouterr().out

    def test_construct_selector(self, capsys):
        assert main(["construct", "--kind", "selector", "--n", "6", "--k", "2"]) == 0

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "--fast", "--only", "E1,E8"]) == 0
        out = capsys.readouterr().out
        assert "== E1 ==" in out
        assert "== E8 ==" in out
        assert "== E3 ==" not in out

    def test_experiments_engine_flag(self, capsys):
        assert (
            main(
                ["experiments", "--fast", "--only", "E11", "--engine", "bitpacked"]
            )
            == 0
        )
        assert "bitpacked" in capsys.readouterr().out


class TestFaultsCommand:
    @pytest.mark.parametrize("engine", ["vectorized", "bitpacked"])
    def test_faults_report(self, capsys, engine):
        assert main(["faults", "--n", "6", "--engine", engine]) == 0
        out = capsys.readouterr().out
        assert f"engine={engine}" in out
        assert "coverage=" in out
        assert "StuckPassFault" in out

    def test_faults_reference_criterion(self, capsys):
        assert (
            main(["faults", "--n", "4", "--criterion", "reference"]) == 0
        )
        assert "criterion=reference" in capsys.readouterr().out

    def test_fault_model_choices_track_the_registry(self):
        """``--fault-model`` is populated from the fault-model registry."""
        from repro._registry import fault_model_names

        parser = build_parser()
        for sub in ("faults", "diagnose"):
            with pytest.raises(SystemExit):
                parser.parse_args([sub, "--n", "4", "--fault-model", "gremlin"])
        for name in fault_model_names():
            args = parser.parse_args(["faults", "--n", "4", "--fault-model", name])
            assert args.fault_model == name

    def test_faults_registered_model_universe(self, capsys):
        assert (
            main(["faults", "--n", "4", "--fault-model", "BridgingFault"]) == 0
        )
        out = capsys.readouterr().out
        assert "model=BridgingFault" in out
        assert "BridgingFault:" in out

    def test_diagnose_report(self, capsys):
        assert main(["diagnose", "--n", "4", "--fault-model", "MultiFault"]) == 0
        out = capsys.readouterr().out
        assert "classes=" in out
        assert "resolution=" in out
        assert "adaptive_order=" in out
