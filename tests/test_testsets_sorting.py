"""Unit tests for the Theorem 2.2 test-set generators (sorting)."""

from __future__ import annotations

import math

import pytest

from repro.constructions import (
    batcher_sorting_network,
    bose_nelson_sorting_network,
    optimal_sorting_network,
)
from repro.core import random_sorter_mutation
from repro.properties import is_sorter, sorts_all_words
from repro.testsets import (
    near_sorter,
    sorting_binary_test_set,
    sorting_lower_bound_witnesses_binary,
    sorting_lower_bound_witnesses_permutation,
    sorting_permutation_test_set,
    sorting_permutation_test_set_size,
    sorting_test_set_size,
)
from repro.words import (
    count_ones,
    is_sorted_word,
    no_permutation_covers_both,
    permutation_covers,
)


class TestBinaryTestSet:
    @pytest.mark.parametrize("n", range(1, 12))
    def test_size_matches_theorem(self, n):
        assert len(sorting_binary_test_set(n)) == sorting_test_set_size(n)

    def test_contains_only_unsorted_words(self):
        assert all(not is_sorted_word(w) for w in sorting_binary_test_set(6))

    def test_words_are_unique(self):
        words = sorting_binary_test_set(7)
        assert len(set(words)) == len(words)

    @pytest.mark.parametrize(
        "factory,n",
        [(batcher_sorting_network, 6), (bose_nelson_sorting_network, 5), (optimal_sorting_network, 7)],
    )
    def test_sufficiency_sorters_pass(self, factory, n):
        assert sorts_all_words(factory(n), sorting_binary_test_set(n))

    def test_sufficiency_matches_full_verdict_for_mutants(self, rng):
        """Passing the test set == being a sorter, for a population of mutants."""
        sorter = batcher_sorting_network(6)
        test_set = sorting_binary_test_set(6)
        for _ in range(20):
            mutant = random_sorter_mutation(sorter, rng, num_mutations=1)
            assert sorts_all_words(mutant, test_set) == is_sorter(
                mutant, strategy="binary"
            )

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_necessity_no_word_can_be_dropped(self, n):
        """Dropping any single word breaks the test set (Lemma 2.1)."""
        test_set = sorting_binary_test_set(n)
        for dropped in test_set:
            remaining = [w for w in test_set if w != dropped]
            adversary = near_sorter(dropped)
            # The adversary passes the weakened test set but is not a sorter.
            assert sorts_all_words(adversary, remaining)
            assert not is_sorter(adversary, strategy="binary")


class TestPermutationTestSet:
    @pytest.mark.parametrize("n", range(2, 9))
    def test_size_matches_theorem(self, n):
        assert (
            len(sorting_permutation_test_set(n))
            == sorting_permutation_test_set_size(n)
        )

    @pytest.mark.parametrize("n", range(2, 8))
    def test_sorters_pass_and_adversaries_fail(self, n):
        perms = sorting_permutation_test_set(n)
        sorter = batcher_sorting_network(n)
        assert sorts_all_words(sorter, perms)
        # An adversary for a weight-floor(n/2) word must be caught.
        witnesses = sorting_lower_bound_witnesses_permutation(n)
        adversary = near_sorter(witnesses[0])
        assert not sorts_all_words(adversary, perms)

    @pytest.mark.parametrize("n", range(2, 8))
    def test_every_adversary_is_caught(self, n):
        """Sufficiency: every Lemma 2.1 adversary fails on some test permutation."""
        perms = sorting_permutation_test_set(n)
        for sigma in sorting_binary_test_set(n):
            adversary = near_sorter(sigma)
            assert not sorts_all_words(adversary, perms), sigma

    def test_identity_not_included(self):
        from repro.words import identity_permutation

        assert identity_permutation(6) not in sorting_permutation_test_set(6)


class TestLowerBoundWitnesses:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_witness_count_matches_bound(self, n):
        witnesses = sorting_lower_bound_witnesses_permutation(n)
        assert len(witnesses) == math.comb(n, n // 2) - 1

    def test_witnesses_have_central_weight(self):
        for w in sorting_lower_bound_witnesses_permutation(6):
            assert count_ones(w) == 3
            assert not is_sorted_word(w)

    @pytest.mark.parametrize("n", [4, 6])
    def test_no_permutation_covers_two_witnesses(self, n):
        witnesses = sorting_lower_bound_witnesses_permutation(n)
        for i in range(len(witnesses)):
            for j in range(i + 1, len(witnesses)):
                assert no_permutation_covers_both(witnesses[i], witnesses[j])

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_each_witness_is_covered_by_some_test_permutation(self, n):
        perms = sorting_permutation_test_set(n)
        for witness in sorting_lower_bound_witnesses_permutation(n):
            assert any(permutation_covers(p, witness) for p in perms)

    def test_binary_witnesses_equal_the_test_set(self):
        assert sorting_lower_bound_witnesses_binary(5) == sorting_binary_test_set(5)
