"""The streaming / sharded execution subsystem (:mod:`repro.parallel`).

Chunk-boundary correctness is the load-bearing guarantee: streamed and
sharded results must be bit-identical to the single-shot engines for random
networks, odd chunk sizes, and the empty-batch edge cases.  Hypothesis
drives the serial chunked paths (cheap); a small number of deterministic
tests exercise the real process pools.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.constructions import batcher_sorting_network
from repro.core import ComparatorNetwork
from repro.core.bitpacked import (
    pack_batch,
    packed_all_binary_words,
    packed_count_gt_blocks,
    packed_cube_range,
    packed_selection_violation_blocks,
    packed_unsorted_blocks,
    packed_zero_count_planes,
    unpack_bits,
)
from repro.core.evaluation import (
    all_binary_words_array,
    evaluate_on_all_binary_inputs,
)
from repro.exceptions import ExecutionConfigError
from repro.faults import enumerate_single_faults, fault_detection_matrix
from repro.parallel import (
    ExecutionConfig,
    chunk_spans,
    chunked_words_all_sorted,
    cube_block_spans,
    rank_to_word,
    shard_spans,
    sharded_fault_detection_matrix,
    streamed_is_selector,
    streamed_is_sorter,
    streamed_sorting_failure_rank,
)
from repro.properties import is_merger, is_selector, is_sorter
from repro.properties.sorter import find_sorting_counterexample
from repro.testsets import network_passes_test_set, sorting_binary_test_set


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def networks(draw, min_lines: int = 2, max_lines: int = 8, max_size: int = 14):
    n = draw(st.integers(min_lines, max_lines))
    size = draw(st.integers(0, max_size))
    comparators = []
    for _ in range(size):
        low = draw(st.integers(0, n - 2))
        high = draw(st.integers(low + 1, n - 1))
        comparators.append((low, high))
    return ComparatorNetwork.from_pairs(n, comparators)


odd_chunks = st.sampled_from([1, 3, 7, 63, 64, 65, 100, 129])


# ----------------------------------------------------------------------
# Chunk-span arithmetic
# ----------------------------------------------------------------------
def test_chunk_spans_cover_exactly_once():
    assert list(chunk_spans(0, 5)) == []
    assert list(chunk_spans(10, 100)) == [(0, 10)]
    spans = list(chunk_spans(10, 3))
    assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]
    assert list(chunk_spans(4, 0)) == [(0, 1), (1, 2), (2, 3), (3, 4)]


def test_shard_spans_cover_exactly_once():
    assert shard_spans(0, 4) == []
    for total, workers in ((1, 4), (7, 2), (100, 3), (5, 100)):
        spans = shard_spans(total, workers)
        covered = [i for start, stop in spans for i in range(start, stop)]
        assert covered == list(range(total))


def test_cube_block_spans_round_up_to_blocks():
    spans = cube_block_spans(8, 65)  # 65 words -> 2 blocks per chunk
    assert spans == [(0, 2), (2, 4)]
    assert cube_block_spans(2, 1) == [(0, 1)]


def test_execution_config_validation():
    with pytest.raises(ExecutionConfigError):
        ExecutionConfig(max_workers=-1)
    with pytest.raises(ExecutionConfigError):
        ExecutionConfig(chunk_size=0)
    assert not ExecutionConfig().streaming
    assert ExecutionConfig(chunk_size=64).streaming
    assert ExecutionConfig(max_workers=0).resolved_workers() >= 1


# ----------------------------------------------------------------------
# packed_cube_range == column slices of the full packed cube
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [0, 1, 2, 5, 6, 7, 10])
@pytest.mark.parametrize("chunk_blocks", [1, 3, 7])
def test_packed_cube_range_matches_full_cube(n, chunk_blocks):
    full = packed_all_binary_words(n)
    pieces = []
    words = 0
    start = 0
    while start < full.n_blocks:
        stop = min(full.n_blocks, start + chunk_blocks)
        part = packed_cube_range(n, start, stop)
        assert np.array_equal(part.planes, full.planes[:, start:stop])
        words += part.num_words
        pieces.append(part)
        start = stop
    assert words == 1 << n


def test_packed_cube_range_rejects_bad_spans():
    with pytest.raises(ValueError):
        packed_cube_range(4, -1, 0)
    with pytest.raises(ValueError):
        packed_cube_range(4, 0, 2)  # n=4 has a single block
    with pytest.raises(ValueError):
        packed_cube_range(-1, 0, 0)


# ----------------------------------------------------------------------
# Packed zero counts / selection check
# ----------------------------------------------------------------------
@given(
    st.integers(1, 9).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.lists(st.integers(0, 1), min_size=n, max_size=n),
                min_size=0,
                max_size=90,
            ),
            st.integers(0, n + 2),
        )
    )
)
@settings(max_examples=60, deadline=None)
def test_packed_zero_counts_and_compare(params):
    n, rows, threshold = params
    batch = np.asarray(rows, dtype=np.int8).reshape((len(rows), n))
    packed = pack_batch(batch, n_lines=n)
    counter = packed_zero_count_planes(packed)
    zeros = np.sum(batch == 0, axis=1)
    gt = unpack_bits(
        packed_count_gt_blocks(counter, threshold, packed.pad_mask()),
        packed.num_words,
    )
    assert np.array_equal(gt, zeros > threshold)


@given(networks(), st.data())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_packed_selection_check_matches_reference(network, data):
    from repro.properties.selector import _binary_batch_selected

    n = network.n_lines
    k = data.draw(st.integers(1, n))
    batch = all_binary_words_array(n)
    reference = _binary_batch_selected(network, batch, k, engine="vectorized")
    packed = _binary_batch_selected(network, batch, k, engine="bitpacked")
    assert np.array_equal(packed, reference)


# ----------------------------------------------------------------------
# Streamed cube verification: bit-identical across odd chunk sizes
# ----------------------------------------------------------------------
@given(networks(), odd_chunks)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_streamed_sorter_matches_single_shot(network, chunk):
    config = ExecutionConfig(max_workers=1, chunk_size=chunk)
    expected = is_sorter(network, strategy="binary", engine="bitpacked")
    assert streamed_is_sorter(network, config=config) == expected
    assert (
        is_sorter(network, strategy="binary", engine="bitpacked", config=config)
        == expected
    )
    assert (
        is_sorter(network, strategy="testset", engine="bitpacked", config=config)
        == is_sorter(network, strategy="testset", engine="bitpacked")
    )


@given(networks(), odd_chunks)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_streamed_counterexample_is_first_in_rank_order(network, chunk):
    config = ExecutionConfig(max_workers=1, chunk_size=chunk)
    streamed = find_sorting_counterexample(
        network, engine="bitpacked", config=config
    )
    reference = find_sorting_counterexample(network)
    assert streamed == reference


@given(networks(), odd_chunks, st.data())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_streamed_selector_matches_single_shot(network, chunk, data):
    k = data.draw(st.integers(1, network.n_lines))
    config = ExecutionConfig(max_workers=1, chunk_size=chunk)
    for strategy in ("binary", "testset"):
        expected = is_selector(
            network, k, strategy=strategy, engine="bitpacked"
        )
        assert (
            is_selector(
                network, k, strategy=strategy, engine="bitpacked", config=config
            )
            == expected
        )


def test_streamed_failure_rank_points_at_first_unsorted_output():
    network = batcher_sorting_network(8).without_comparator(3)
    config = ExecutionConfig(chunk_size=32)
    rank = streamed_sorting_failure_rank(network, config=config)
    assert rank is not None
    word = rank_to_word(rank, 8)
    assert find_sorting_counterexample(network, engine="bitpacked") == word


# ----------------------------------------------------------------------
# Chunked explicit word lists (merger / test-set validation)
# ----------------------------------------------------------------------
@given(networks(min_lines=4), odd_chunks)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_chunked_test_set_application_matches(network, chunk):
    config = ExecutionConfig(max_workers=1, chunk_size=chunk)
    words = sorting_binary_test_set(network.n_lines)
    expected = network_passes_test_set(network, words, engine="bitpacked")
    assert (
        network_passes_test_set(
            network, words, engine="bitpacked", config=config
        )
        == expected
    )
    assert chunked_words_all_sorted(
        network, [], engine="bitpacked", config=config
    )


@pytest.mark.parametrize("n", [4, 6, 8])
def test_chunked_merger_matches(n):
    from repro.constructions import batcher_merging_network

    config = ExecutionConfig(max_workers=1, chunk_size=3)
    good = batcher_merging_network(n)
    assert is_merger(good, strategy="binary", config=config)
    if good.size > 0:
        bad = good.without_comparator(0)
        assert is_merger(bad, strategy="binary", config=config) == is_merger(
            bad, strategy="binary"
        )


# ----------------------------------------------------------------------
# Sharded fault simulation: exact matrix reproduction
# ----------------------------------------------------------------------
@given(networks(min_lines=3, max_lines=6, max_size=10), odd_chunks)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fault_rows_independent_of_chunking(network, chunk):
    """Serial slices of the fault axis compose to the full matrix."""
    faults = enumerate_single_faults(network)
    vectors = sorting_binary_test_set(network.n_lines)
    full = fault_detection_matrix(network, faults, vectors, engine="bitpacked")
    stitched = np.zeros_like(full)
    for start, stop in chunk_spans(len(faults), max(1, chunk % 7)):
        stitched[start:stop] = fault_detection_matrix(
            network, faults[start:stop], vectors, engine="bitpacked"
        )
    assert np.array_equal(stitched, full)


@pytest.mark.parametrize("engine", ["bitpacked", "vectorized"])
@pytest.mark.parametrize("criterion", ["specification", "reference"])
def test_sharded_matrix_is_bit_identical(engine, criterion):
    network = batcher_sorting_network(8)
    faults = enumerate_single_faults(network)
    vectors = [tuple(int(v) for v in w) for w in sorting_binary_test_set(8)]
    serial = fault_detection_matrix(
        network, faults, vectors, criterion=criterion, engine=engine
    )
    sharded = fault_detection_matrix(
        network,
        faults,
        vectors,
        criterion=criterion,
        engine=engine,
        config=ExecutionConfig(max_workers=2),
    )
    assert sharded.dtype == np.bool_
    assert np.array_equal(sharded, serial)


def test_extended_universe_and_array_vectors_match():
    """The parallel-smoke workload: all-stage line-stuck faults, vector array."""
    network = batcher_sorting_network(7)
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    tuples = sorting_binary_test_set(7)
    from repro.core.evaluation import unsorted_binary_words_array

    array = unsorted_binary_words_array(7)
    reference = fault_detection_matrix(network, faults, tuples, engine="vectorized")
    assert np.array_equal(
        fault_detection_matrix(network, faults, tuples, engine="bitpacked"),
        reference,
    )
    assert np.array_equal(
        fault_detection_matrix(network, faults, array, engine="bitpacked"),
        reference,
    )
    assert np.array_equal(
        fault_detection_matrix(network, faults, array, engine="vectorized"),
        reference,
    )
    sharded = fault_detection_matrix(
        network,
        faults,
        array,
        engine="bitpacked",
        config=ExecutionConfig(max_workers=2),
    )
    assert np.array_equal(sharded, reference)


def test_sharded_matrix_empty_edges():
    network = batcher_sorting_network(4)
    faults = enumerate_single_faults(network)
    config = ExecutionConfig(max_workers=2)
    # Empty test-vector batch: no pool is spun up, shape is preserved.
    empty_vectors = fault_detection_matrix(
        network, faults, [], engine="bitpacked", config=config
    )
    assert empty_vectors.shape == (len(faults), 0)
    # Empty / singleton fault axis: served by the serial path.
    vectors = sorting_binary_test_set(4)
    assert fault_detection_matrix(
        network, [], vectors, engine="bitpacked", config=config
    ).shape == (0, len(vectors))
    single = fault_detection_matrix(
        network, faults[:1], vectors, engine="bitpacked", config=config
    )
    reference = fault_detection_matrix(
        network, faults[:1], vectors, engine="bitpacked"
    )
    assert np.array_equal(single, reference)
    # Direct sharded call with an empty fault list.
    assert sharded_fault_detection_matrix(
        network,
        [],
        [tuple(int(v) for v in w) for w in vectors],
        engine="bitpacked",
        config=config,
    ).shape == (0, len(vectors))


# ----------------------------------------------------------------------
# Real process pools (kept few: each spins up workers)
# ----------------------------------------------------------------------
def test_parallel_streamed_sorter_and_counterexample():
    config = ExecutionConfig(max_workers=2, chunk_size=64)
    good = batcher_sorting_network(9)
    assert is_sorter(good, strategy="binary", engine="bitpacked", config=config)
    bad = good.without_comparator(7)
    assert (
        find_sorting_counterexample(bad, engine="bitpacked", config=config)
        == find_sorting_counterexample(bad)
    )


def test_parallel_chunked_words():
    config = ExecutionConfig(max_workers=2, chunk_size=50)
    network = batcher_sorting_network(8)
    words = sorting_binary_test_set(8)
    assert network_passes_test_set(
        network, words, engine="bitpacked", config=config
    )
    assert not network_passes_test_set(
        network.without_comparator(0), words, engine="bitpacked", config=config
    )


def test_streamed_evaluate_on_all_binary_inputs_matches():
    network = batcher_sorting_network(7)
    config = ExecutionConfig(chunk_size=64)
    reference = evaluate_on_all_binary_inputs(network, engine="bitpacked")
    streamed = evaluate_on_all_binary_inputs(
        network, engine="bitpacked", config=config
    )
    assert np.array_equal(streamed, reference)


def test_streamed_selector_parallel():
    config = ExecutionConfig(max_workers=2, chunk_size=64)
    network = batcher_sorting_network(9)
    assert streamed_is_selector(network, 4, config=config)


def test_unsorted_blocks_has_clean_padding():
    batch = np.asarray([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.int8)
    packed = pack_batch(batch)
    mask = packed_unsorted_blocks(packed)
    assert np.array_equal(
        unpack_bits(mask, packed.num_words), np.array([True, False, True])
    )
    # Padding bits beyond num_words stay zero.
    assert int(mask[0]) >> 3 == 0
    violations = packed_selection_violation_blocks(
        packed, packed, 2, restrict_to_test_words=True
    )
    assert int(violations[0]) >> 3 == 0
