"""Unit tests for the Theorem 2.4 and 2.5 test-set generators."""

from __future__ import annotations

import pytest

from repro.constructions import (
    batcher_merging_network,
    bubble_selection_network,
    pruned_selection_network,
    zipper_merging_network,
)
from repro.exceptions import TestSetError
from repro.properties import (
    is_merger,
    is_selector,
    merges_correctly,
    selects_correctly,
)
from repro.testsets import (
    half_sorted_words,
    merging_binary_test_set,
    merging_lower_bound_witnesses,
    merging_permutation_test_set,
    merging_permutation_test_set_size,
    merging_test_set_size,
    near_merger,
    near_selector,
    selector_binary_test_set,
    selector_permutation_test_set,
    selector_permutation_test_set_size,
    selector_test_set_size,
)
from repro.words import (
    count_ones,
    count_zeros,
    is_sorted_word,
    no_permutation_covers_both,
    permutation_covers,
)


class TestSelectorBinaryTestSet:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 2), (6, 3), (7, 4), (8, 8)])
    def test_size_matches_theorem(self, n, k):
        assert len(selector_binary_test_set(n, k)) == selector_test_set_size(n, k)

    def test_members_are_unsorted_with_few_zeros(self):
        for word in selector_binary_test_set(6, 2):
            assert not is_sorted_word(word)
            assert count_zeros(word) <= 2

    def test_k_equals_n_recovers_the_sorting_test_set(self):
        from repro.testsets import sorting_binary_test_set

        assert set(selector_binary_test_set(5, 5)) == set(sorting_binary_test_set(5))

    @pytest.mark.parametrize("n,k", [(5, 2), (6, 2), (6, 3)])
    def test_sufficiency_real_selectors_pass(self, n, k):
        words = selector_binary_test_set(n, k)
        for network in (bubble_selection_network(n, k), pruned_selection_network(n, k)):
            assert all(selects_correctly(network, k, w) for w in words)

    @pytest.mark.parametrize("n,k", [(4, 1), (5, 2)])
    def test_necessity_no_word_can_be_dropped(self, n, k):
        words = selector_binary_test_set(n, k)
        for dropped in words:
            adversary = near_selector(dropped, k)
            others = [w for w in words if w != dropped]
            assert all(selects_correctly(adversary, k, w) for w in others)
            assert not is_selector(adversary, k, strategy="binary")

    def test_bad_parameters(self):
        with pytest.raises(TestSetError):
            selector_binary_test_set(5, 0)
        with pytest.raises(TestSetError):
            selector_binary_test_set(5, 6)


class TestSelectorPermutationTestSet:
    @pytest.mark.parametrize("n,k", [(4, 1), (4, 2), (5, 2), (6, 3), (6, 5), (7, 3)])
    def test_size_matches_theorem(self, n, k):
        assert (
            len(selector_permutation_test_set(n, k))
            == selector_permutation_test_set_size(n, k)
        )

    @pytest.mark.parametrize("n,k", [(5, 2), (6, 2)])
    def test_selectors_pass_and_adversaries_fail(self, n, k):
        perms = selector_permutation_test_set(n, k)
        selector = bubble_selection_network(n, k)
        assert all(selects_correctly(selector, k, p) for p in perms)
        # Every Lemma 2.3 adversary is exposed by some permutation in the set.
        for sigma in selector_binary_test_set(n, k):
            adversary = near_selector(sigma, k)
            assert not all(selects_correctly(adversary, k, p) for p in perms), sigma

    @pytest.mark.parametrize("n,k", [(5, 2), (6, 2), (6, 3)])
    def test_every_required_word_is_covered(self, n, k):
        perms = selector_permutation_test_set(n, k)
        for word in selector_binary_test_set(n, k):
            assert any(permutation_covers(p, word) for p in perms)


class TestMergingBinaryTestSet:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10])
    def test_size_matches_theorem(self, n):
        assert len(merging_binary_test_set(n)) == merging_test_set_size(n)

    def test_members_have_sorted_halves_but_are_unsorted(self):
        for word in merging_binary_test_set(8):
            assert is_sorted_word(word[:4])
            assert is_sorted_word(word[4:])
            assert not is_sorted_word(word)

    def test_half_sorted_words_count(self):
        assert len(half_sorted_words(6)) == 16

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_sufficiency_mergers_pass(self, n):
        words = merging_binary_test_set(n)
        for network in (batcher_merging_network(n), zipper_merging_network(n)):
            assert all(merges_correctly(network, w) for w in words)

    @pytest.mark.parametrize("n", [4, 6])
    def test_necessity_no_word_can_be_dropped(self, n):
        words = merging_binary_test_set(n)
        for dropped in words:
            adversary = near_merger(dropped)
            others = [w for w in words if w != dropped]
            assert all(merges_correctly(adversary, w) for w in others)
            assert not is_merger(adversary, strategy="binary")

    def test_odd_n_rejected(self):
        with pytest.raises(TestSetError):
            merging_binary_test_set(5)


class TestMergingPermutationTestSet:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 12])
    def test_size_matches_theorem(self, n):
        assert (
            len(merging_permutation_test_set(n))
            == merging_permutation_test_set_size(n)
        )

    def test_members_are_legal_merge_inputs(self):
        for perm in merging_permutation_test_set(8):
            assert sorted(perm) == list(range(8))
            assert list(perm[:4]) == sorted(perm[:4])
            assert list(perm[4:]) == sorted(perm[4:])

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_mergers_pass_and_adversaries_fail(self, n):
        perms = merging_permutation_test_set(n)
        merger = batcher_merging_network(n)
        assert all(merges_correctly(merger, p) for p in perms)
        for sigma in merging_binary_test_set(n):
            adversary = near_merger(sigma)
            assert not all(merges_correctly(adversary, p) for p in perms), sigma

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_covers_the_binary_test_set(self, n):
        perms = merging_permutation_test_set(n)
        for word in merging_binary_test_set(n):
            assert any(permutation_covers(p, word) for p in perms)


class TestMergingLowerBound:
    @pytest.mark.parametrize("n", [4, 6, 8, 10])
    def test_witness_count(self, n):
        assert len(merging_lower_bound_witnesses(n)) == n // 2

    def test_witnesses_are_valid_unsorted_merge_inputs_of_equal_weight(self):
        witnesses = merging_lower_bound_witnesses(8)
        for w in witnesses:
            assert is_sorted_word(w[:4]) and is_sorted_word(w[4:])
            assert not is_sorted_word(w)
            assert count_ones(w) == 4

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_no_permutation_covers_two_witnesses(self, n):
        witnesses = merging_lower_bound_witnesses(n)
        for i in range(len(witnesses)):
            for j in range(i + 1, len(witnesses)):
                assert no_permutation_covers_both(witnesses[i], witnesses[j])
