"""Session facade: bit-identity with the legacy kwarg paths + resource reuse.

The load-bearing guarantee of the facade PR: every workload run through
:class:`repro.api.Session` returns results **bit-identical** to the legacy
free functions with the corresponding kwargs, across random networks, all
engines, both criteria and streamed configurations (hypothesis-driven).
A few deterministic tests pin the resource behaviour — persistent pool
reuse across calls, the Session-owned arena, env-var construction.
"""

from __future__ import annotations

import warnings

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.api import Session
from repro.constructions import batcher_sorting_network
from repro.core import ComparatorNetwork
from repro.exceptions import ExecutionConfigError, TestSetError
from repro.faults import (
    coverage_report,
    enumerate_single_faults,
    fault_detection_matrix,
)
from repro.properties import is_sorter
from repro.testsets import network_passes_test_set, sorting_binary_test_set


@st.composite
def networks(draw, min_lines: int = 2, max_lines: int = 6, max_size: int = 10):
    n = draw(st.integers(min_lines, max_lines))
    size = draw(st.integers(0, max_size))
    comparators = []
    for _ in range(size):
        low = draw(st.integers(0, n - 2))
        high = draw(st.integers(low + 1, n - 1))
        comparators.append((low, high))
    return ComparatorNetwork.from_pairs(n, comparators)


engines = st.sampled_from(["scalar", "vectorized", "bitpacked"])
criteria = st.sampled_from(["specification", "reference"])


def _legacy(call, *args, **kwargs):
    """Run a legacy free function, swallowing its DeprecationWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return call(*args, **kwargs)


# ----------------------------------------------------------------------
# Hypothesis equivalence: Session vs the legacy kwarg paths
# ----------------------------------------------------------------------
@given(networks(), engines, st.sampled_from(["binary", "testset"]))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_verify_matches_legacy_is_sorter(network, engine, strategy):
    legacy = _legacy(is_sorter, network, strategy=strategy, engine=engine)
    with Session(engine=engine) as session:
        result = session.verify(network, "sorter", strategy=strategy)
    assert result.verdict == legacy
    assert bool(result) == legacy
    assert result.execution.engine_effective == engine


@given(networks(), engines)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_passes_test_set_matches_legacy(network, engine):
    words = sorting_binary_test_set(network.n_lines)
    legacy = _legacy(network_passes_test_set, network, words, engine=engine)
    with Session(engine=engine) as session:
        result = session.passes_test_set(network, words)
    assert result.passed == legacy
    assert result.vectors_used == len(words)


@given(networks(), engines, criteria, st.booleans())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fault_matrix_matches_legacy(network, engine, criterion, prune):
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    vectors = sorting_binary_test_set(network.n_lines)
    if not vectors:
        return
    legacy = _legacy(
        fault_detection_matrix, network, faults, vectors,
        criterion=criterion, engine=engine, prune=prune,
    )
    with Session(engine=engine, prune=prune) as session:
        result = session.fault_matrix(network, faults, vectors, criterion=criterion)
    assert np.array_equal(result.matrix, legacy)
    assert result.num_faults == len(faults)
    assert result.num_vectors == len(vectors)


@given(networks(), criteria, st.sampled_from([1, 7, 64, 100]))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_streamed_coverage_matches_legacy(network, criterion, chunk):
    """Chunked (streamed) Session runs agree with the legacy streamed path."""
    from repro.parallel import ExecutionConfig

    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    vectors = sorting_binary_test_set(network.n_lines)
    if not vectors:
        return
    legacy = _legacy(
        coverage_report, network, faults, vectors,
        criterion=criterion, engine="bitpacked",
        config=ExecutionConfig(chunk_size=chunk),
    )
    with Session(engine="bitpacked", chunk_size=chunk) as session:
        result = session.fault_coverage(
            network, faults, vectors, criterion=criterion
        )
    assert result.coverage == legacy.coverage
    assert result.detected_faults == legacy.detected_faults
    assert result.by_kind == legacy.by_kind
    assert result.vectors_used == legacy.vectors_used


@given(networks())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_arena_policies_agree(network):
    """Session-owned arena, explicit arena and arena=False are bit-identical."""
    faults = enumerate_single_faults(network, line_stuck_at_input_only=False)
    vectors = sorting_binary_test_set(network.n_lines)
    if not vectors:
        return
    matrices = []
    for arena in (None, False):
        with Session(engine="bitpacked", arena=arena) as session:
            matrices.append(
                session.fault_matrix(network, faults, vectors).matrix
            )
    assert np.array_equal(matrices[0], matrices[1])


# ----------------------------------------------------------------------
# Resource reuse and lifecycle
# ----------------------------------------------------------------------
class TestSessionResources:
    def test_owned_arena_is_reused_across_calls(self, batcher8):
        faults = enumerate_single_faults(batcher8)
        vectors = sorting_binary_test_set(8)
        with Session(engine="bitpacked") as session:
            session.fault_matrix(batcher8, faults, vectors)
            arena_first = session._owned_arena
            session.fault_coverage(batcher8, faults, vectors)
            assert session._owned_arena is arena_first

    def test_serial_session_creates_no_pool(self, batcher8):
        with Session(engine="bitpacked") as session:
            session.verify(batcher8, "sorter")
            assert session._pool is None

    def test_parallel_session_reuses_one_pool(self, batcher8):
        faults = enumerate_single_faults(batcher8)
        vectors = sorting_binary_test_set(8)
        serial = _legacy(
            fault_detection_matrix, batcher8, faults, vectors, engine="bitpacked"
        )
        with Session(engine="bitpacked", workers=2) as session:
            first = session.fault_matrix(batcher8, faults, vectors)
            pool = session._pool
            assert pool is not None and pool.active
            second = session.fault_matrix(
                batcher8, faults, vectors, criterion="reference"
            )
            assert session._pool is pool
        assert not pool.active  # close() shut it down
        assert np.array_equal(first.matrix, serial)
        reference = _legacy(
            fault_detection_matrix, batcher8, faults, vectors,
            criterion="reference", engine="bitpacked",
        )
        assert np.array_equal(second.matrix, reference)

    def test_parallel_verify_through_shared_pool(self, batcher8):
        with Session(engine="bitpacked", workers=2, chunk_size=64) as session:
            result = session.verify(batcher8, "sorter", strategy="binary")
            assert result.verdict
            assert session._pool is not None and session._pool.active
            assert result.execution.workers == 2
            assert result.execution.chunk_words == 64

    def test_grid_shape_reports_streamed_chunks(self, batcher8):
        faults = enumerate_single_faults(batcher8)
        with Session(engine="bitpacked", chunk_size=64) as session:
            from repro.faults import CubeVectors

            report = session.fault_coverage(batcher8, faults, CubeVectors(8))
        # 2**8 words in 64-word chunks -> 4 vector chunks, one fault shard.
        assert report.execution.grid_shape == (1, 4)

    def test_close_is_idempotent_and_session_reusable(self, batcher8):
        session = Session(engine="bitpacked", workers=2)
        faults = enumerate_single_faults(batcher8)
        vectors = sorting_binary_test_set(8)
        session.fault_matrix(batcher8, faults, vectors)
        session.close()
        session.close()
        # A later call simply respawns the pool.
        again = session.fault_matrix(batcher8, faults, vectors)
        assert again.matrix.shape == (len(faults), len(vectors))
        session.close()


class TestSessionConstruction:
    def test_default_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "bitpacked")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "4096")
        monkeypatch.setenv("REPRO_PRUNE", "0")
        monkeypatch.setenv("REPRO_ARENA", "false")
        session = Session.default()
        assert session.engine == "bitpacked"
        assert session.workers == 3
        assert session.chunk_size == 4096
        assert session.prune is False
        assert session.arena is False

    def test_default_without_env_is_plain(self, monkeypatch):
        for name in (
            "REPRO_ENGINE",
            "REPRO_WORKERS",
            "REPRO_CHUNK_SIZE",
            "REPRO_PRUNE",
            "REPRO_ARENA",
        ):
            monkeypatch.delenv(name, raising=False)
        session = Session.default()
        assert session.engine == "vectorized"
        assert session.workers == 1
        assert session.chunk_size is None
        assert session.prune is True
        assert session.arena is None

    def test_invalid_knobs_raise(self):
        with pytest.raises(ExecutionConfigError):
            Session(workers=-1)
        with pytest.raises(ExecutionConfigError):
            Session(chunk_size=0)
        with pytest.raises(Exception):
            Session(engine="no-such-engine")

    def test_unknown_property_raises(self, batcher8):
        with Session() as session, pytest.raises(TestSetError):
            session.verify(batcher8, "router")

    def test_compare_test_sets_matches_individual_calls(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        sets = {
            "theorem": sorting_binary_test_set(4),
            "tiny": [(1, 0, 0, 0)],
        }
        with Session(engine="bitpacked") as session:
            combined = session.compare_test_sets(four_sorter, faults, sets)
            singles = {
                name: session.fault_coverage(four_sorter, faults, vectors)
                for name, vectors in sets.items()
            }
        assert combined.keys() == singles.keys()
        for name in sets:
            assert combined[name].coverage == singles[name].coverage
            assert combined[name].by_kind == singles[name].by_kind


def test_verify_selector_and_merger_match_legacy():
    from repro.constructions import batcher_merging_network, pruned_selection_network
    from repro.properties import is_merger, is_selector

    selector = pruned_selection_network(6, 2)
    merger = batcher_merging_network(6)
    with Session(engine="bitpacked") as session:
        sel = session.verify(selector, "selector", k=2)
        mer = session.verify(merger, "merger")
    assert sel.verdict == _legacy(is_selector, selector, 2, engine="bitpacked")
    assert sel.k == 2
    assert mer.verdict == _legacy(is_merger, merger, engine="bitpacked")
    assert mer.k is None


def test_sharded_session_matches_serial_medium():
    """One real multi-worker run through the persistent pool, bit-identical."""
    device = batcher_sorting_network(10)
    faults = enumerate_single_faults(device, line_stuck_at_input_only=False)
    vectors = np.asarray(sorting_binary_test_set(10), dtype=np.int8)
    serial = _legacy(
        fault_detection_matrix, device, faults, vectors, engine="bitpacked"
    )
    with Session(engine="bitpacked", workers=2) as session:
        first = session.fault_matrix(device, faults, vectors)
        second = session.fault_matrix(device, faults, vectors)
    assert np.array_equal(first.matrix, serial)
    assert np.array_equal(second.matrix, serial)
