"""Public-API surface snapshot and deprecation-shim contract.

Two guarantees: (a) the shape of the :mod:`repro.api` facade — exported
names, Session signature, result-object fields, registry built-ins — is
pinned so accidental surface changes fail loudly, and (b) every legacy
free-function shim emits a :class:`DeprecationWarning` exactly when the
deprecated execution kwargs are passed explicitly, and stays silent on
plain calls.
"""

from __future__ import annotations

from dataclasses import fields
import inspect
import warnings

import numpy as np
import pytest

import repro.api as api
from repro.api import registry
from repro.constructions import batcher_sorting_network
from repro.core.evaluation import (
    apply_network_to_batch,
    reset_engine_downgrade_warning,
)
from repro.exceptions import EngineDowngradeWarning, EngineError
from repro.faults import (
    compare_test_sets,
    coverage_report,
    enumerate_single_faults,
    fault_coverage,
    fault_detection_any,
    fault_detection_matrix,
)
from repro.properties import is_merger, is_selector, is_sorter
from repro.testsets import network_passes_test_set, sorting_binary_test_set


# ----------------------------------------------------------------------
# Surface snapshot
# ----------------------------------------------------------------------
class TestApiSurface:
    def test_api_exports(self):
        assert sorted(api.__all__) == [
            "CacheStats",
            "CoverageReport",
            "DiagnosisResult",
            "ExecutionInfo",
            "FaultMatrixResult",
            "PROPERTIES",
            "ResultCache",
            "Session",
            "TestSetResult",
            "VerificationResult",
            "registry",
        ]

    def test_session_constructor_signature(self):
        params = inspect.signature(api.Session).parameters
        assert list(params) == [
            "engine", "workers", "chunk_size", "prune", "arena", "cache",
        ]
        assert all(
            p.kind is inspect.Parameter.KEYWORD_ONLY for p in params.values()
        )
        defaults = {name: p.default for name, p in params.items()}
        assert defaults == {
            "engine": "vectorized",
            "workers": 1,
            "chunk_size": None,
            "prune": True,
            "arena": None,
            "cache": None,
        }

    @pytest.mark.parametrize(
        "method,expected",
        [
            ("verify", ["network", "prop", "k", "strategy"]),
            ("passes_test_set", ["network", "test_words"]),
            ("fault_matrix", ["network", "faults", "test_vectors", "criterion"]),
            ("fault_coverage", ["network", "faults", "test_vectors", "criterion"]),
            ("compare_test_sets", ["network", "faults", "test_sets", "criterion"]),
            ("diagnose", ["network", "faults", "test_vectors", "criterion"]),
        ],
    )
    def test_workload_method_signatures(self, method, expected):
        params = inspect.signature(getattr(api.Session, method)).parameters
        assert [name for name in params if name != "self"] == expected

    @pytest.mark.parametrize(
        "cls,expected",
        [
            (
                api.ExecutionInfo,
                [
                    "engine_requested",
                    "engine_effective",
                    "workers",
                    "chunk_words",
                    "grid_shape",
                    "seconds",
                    "cache",
                    "trace",
                ],
            ),
            (
                api.VerificationResult,
                ["verdict", "property_name", "strategy", "k", "n_lines", "execution"],
            ),
            (
                api.TestSetResult,
                ["passed", "vectors_used", "n_lines", "execution"],
            ),
            (
                api.FaultMatrixResult,
                [
                    "matrix",
                    "criterion",
                    "num_faults",
                    "num_vectors",
                    "stats",
                    "execution",
                ],
            ),
            (
                api.CoverageReport,
                [
                    "total_faults",
                    "detected_faults",
                    "coverage",
                    "by_kind",
                    "vectors_used",
                    "criterion",
                    "stats",
                    "execution",
                    "resolution",
                ],
            ),
            (
                api.DiagnosisResult,
                [
                    "dictionary",
                    "resolution",
                    "test_order",
                    "coverage",
                    "criterion",
                    "num_faults",
                    "num_vectors",
                    "stats",
                    "execution",
                ],
            ),
        ],
    )
    def test_result_dataclass_fields(self, cls, expected):
        assert [f.name for f in fields(cls)] == expected

    def test_builtin_engines_are_registered(self):
        names = registry.engine_names()
        assert names[:3] == ("scalar", "vectorized", "bitpacked")
        for name in ("scalar", "vectorized", "bitpacked"):
            assert registry.get_engine(name).builtin

    def test_builtin_fault_models_are_registered(self):
        assert set(registry.fault_model_names()) >= {
            "StuckPassFault",
            "StuckSwapFault",
            "ReversedComparatorFault",
            "LineStuckFault",
        }


# ----------------------------------------------------------------------
# Engine registry behaviour
# ----------------------------------------------------------------------
class TestEngineRegistry:
    def test_register_dispatch_unregister(self, four_sorter):
        def doubled_vectorized(network, batch):
            return apply_network_to_batch(network, np.asarray(batch))

        registry.register_engine("test-plugin", doubled_vectorized)
        try:
            batch = np.array([[1, 0, 1, 0], [0, 1, 1, 0]], dtype=np.int8)
            out = apply_network_to_batch(four_sorter, batch, engine="test-plugin")
            expected = apply_network_to_batch(four_sorter, batch)
            assert np.array_equal(out, expected)
            assert "test-plugin" in registry.engine_names()
        finally:
            registry.unregister_engine("test-plugin")
        assert "test-plugin" not in registry.engine_names()
        with pytest.raises(EngineError):
            apply_network_to_batch(four_sorter, batch, engine="test-plugin")

    def test_plugin_engine_drives_the_fault_simulator(self, four_sorter):
        calls = []

        def counting_vectorized(network, batch):
            calls.append(type(network).__name__)
            return apply_network_to_batch(network, np.asarray(batch))

        registry.register_engine("test-fault-plugin", counting_vectorized)
        try:
            faults = enumerate_single_faults(four_sorter)
            vectors = sorting_binary_test_set(4)
            with api.Session(engine="test-fault-plugin") as session:
                result = session.fault_matrix(four_sorter, faults, vectors)
            reference = fault_detection_matrix(four_sorter, faults, vectors)
            assert np.array_equal(result.matrix, reference)
            # The registered callable actually ran (once per faulty device).
            assert len(calls) >= len(faults)
        finally:
            registry.unregister_engine("test-fault-plugin")

    def test_builtins_cannot_be_replaced_or_removed(self):
        with pytest.raises(EngineError):
            registry.register_engine("bitpacked", lambda n, b: b, replace=True)
        with pytest.raises(EngineError):
            registry.unregister_engine("vectorized")

    def test_unknown_engine_message_lists_choices(self, four_sorter):
        with pytest.raises(EngineError, match="bitpacked"):
            apply_network_to_batch(
                four_sorter, np.zeros((1, 4), dtype=np.int8), engine="nope"
            )


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------
class TestDeprecationShims:
    def test_is_sorter_shim_warns_on_engine(self, four_sorter):
        with pytest.warns(DeprecationWarning, match="Session"):
            assert is_sorter(four_sorter, engine="vectorized")

    def test_is_selector_shim_warns_on_config(self, four_sorter):
        with pytest.warns(DeprecationWarning, match="Session"):
            assert is_selector(four_sorter, 1, config=None)

    def test_is_merger_shim_warns_on_engine(self):
        from repro.constructions import batcher_merging_network

        merger = batcher_merging_network(4)
        with pytest.warns(DeprecationWarning, match="Session"):
            assert is_merger(merger, engine="vectorized")

    def test_network_passes_test_set_shim_warns(self, four_sorter):
        with pytest.warns(DeprecationWarning, match="Session"):
            assert network_passes_test_set(
                four_sorter, sorting_binary_test_set(4), engine="vectorized"
            )

    def test_fault_simulation_shims_warn(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        vectors = sorting_binary_test_set(4)
        with pytest.warns(DeprecationWarning, match="Session"):
            fault_detection_matrix(four_sorter, faults, vectors, engine="bitpacked")
        with pytest.warns(DeprecationWarning, match="Session"):
            fault_detection_any(four_sorter, faults, vectors, prune=False)
        with pytest.warns(DeprecationWarning, match="Session"):
            fault_coverage(four_sorter, faults, vectors, engine="bitpacked")
        with pytest.warns(DeprecationWarning, match="Session"):
            coverage_report(four_sorter, faults, vectors, arena=False)
        with pytest.warns(DeprecationWarning, match="Session"):
            compare_test_sets(
                four_sorter, faults, {"testset": vectors}, engine="bitpacked"
            )

    def test_plain_calls_do_not_warn(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        vectors = sorting_binary_test_set(4)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert is_sorter(four_sorter)
            assert network_passes_test_set(four_sorter, vectors)
            fault_detection_matrix(four_sorter, faults, vectors)
            coverage_report(four_sorter, faults, vectors)

    def test_session_does_not_warn(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        vectors = sorting_binary_test_set(4)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with api.Session(engine="bitpacked") as session:
                assert session.verify(four_sorter, "sorter").verdict
                session.fault_coverage(four_sorter, faults, vectors)


# ----------------------------------------------------------------------
# Engine-downgrade surfacing
# ----------------------------------------------------------------------
class TestEngineDowngrade:
    def test_downgrade_warns_once_and_surfaces_on_result(self, four_sorter):
        permutations = [(3, 1, 0, 2), (0, 2, 1, 3)]
        reset_engine_downgrade_warning()
        with api.Session(engine="bitpacked") as session:
            with pytest.warns(EngineDowngradeWarning):
                result = session.passes_test_set(four_sorter, permutations)
            assert result.execution.engine_requested == "bitpacked"
            assert result.execution.engine_effective == "vectorized"
            assert result.execution.engine_downgraded
            # The warning is one-time per process; the field still reports.
            with warnings.catch_warnings():
                warnings.simplefilter("error", EngineDowngradeWarning)
                again = session.passes_test_set(four_sorter, permutations)
            assert again.execution.engine_downgraded

    def test_binary_words_do_not_downgrade(self, four_sorter):
        with api.Session(engine="bitpacked") as session:
            result = session.passes_test_set(
                four_sorter, sorting_binary_test_set(4)
            )
        assert result.execution.engine_effective == "bitpacked"
        assert not result.execution.engine_downgraded

    def test_permutation_strategy_downgrade_on_verify(self, four_sorter):
        reset_engine_downgrade_warning()
        with api.Session(engine="bitpacked") as session, warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = session.verify(
                four_sorter, "sorter", strategy="permutation"
            )
        assert result.execution.engine_effective == "vectorized"
