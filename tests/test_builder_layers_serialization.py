"""Unit tests for the builder, layer decomposition, serialisation and diagrams."""

from __future__ import annotations

import pytest

from repro.core import (
    Comparator,
    ComparatorNetwork,
    NetworkBuilder,
    decompose_into_layers,
    network_depth,
    network_from_dict,
    network_from_json,
    network_from_knuth,
    network_from_layers,
    network_to_dict,
    network_to_json,
    network_to_knuth,
    render_network,
    render_trace,
)
from repro.exceptions import (
    InvalidComparatorError,
    LineCountError,
    SerializationError,
)


class TestBuilder:
    def test_compare_and_build(self):
        net = NetworkBuilder(4).compare(0, 2).compare(1, 3).build()
        assert net.size == 2
        assert net.n_lines == 4

    def test_compare_many(self):
        net = NetworkBuilder(3).compare_many([(0, 1), (1, 2)]).build()
        assert net.size == 2

    def test_out_of_range_comparator_rejected(self):
        with pytest.raises(InvalidComparatorError):
            NetworkBuilder(3).compare(0, 3)

    def test_append_network_same_width(self, four_sorter):
        net = NetworkBuilder(4).append_network(four_sorter).build()
        assert net == four_sorter

    def test_append_network_wrong_width_raises(self, four_sorter):
        with pytest.raises(LineCountError):
            NetworkBuilder(5).append_network(four_sorter)

    def test_append_on_lines_embeds(self):
        gadget = ComparatorNetwork.from_pairs(2, [(0, 1)])
        net = NetworkBuilder(5).append_on_lines(gadget, [1, 4]).build()
        assert net.comparators[0] == Comparator(1, 4)

    def test_append_on_range(self):
        gadget = ComparatorNetwork.from_pairs(2, [(0, 1)])
        net = NetworkBuilder(5).append_on_range(gadget, 2).build()
        assert net.comparators[0] == Comparator(2, 3)

    def test_sort_range_appends_a_sorter(self):
        from repro.words import all_binary_words

        net = NetworkBuilder(5).sort_range(1, 5).build()
        # Lines 1..4 end up sorted for every input.
        for word in all_binary_words(5):
            output = net.apply(word)
            assert list(output[1:]) == sorted(output[1:])

    def test_sort_range_empty_is_noop(self):
        assert NetworkBuilder(4).sort_range(2, 3).build().size == 0

    def test_sort_range_out_of_bounds_raises(self):
        with pytest.raises(LineCountError):
            NetworkBuilder(4).sort_range(0, 5)

    def test_sort_lines_non_contiguous(self):
        net = NetworkBuilder(6).sort_lines([0, 2, 5]).build()
        for comp in net:
            assert comp.low in (0, 2, 5) and comp.high in (0, 2, 5)

    def test_len_and_size(self):
        builder = NetworkBuilder(3).compare(0, 1)
        assert len(builder) == 1
        assert builder.size == 1


class TestLayers:
    def test_depth_of_empty_network(self):
        assert network_depth(ComparatorNetwork.identity(4)) == 0

    def test_fig1_depth(self, fig1_network):
        assert fig1_network.depth == 2

    def test_layers_partition_comparators(self, batcher8):
        layers = decompose_into_layers(batcher8)
        assert sum(len(layer) for layer in layers) == batcher8.size
        assert len(layers) == batcher8.depth

    def test_layers_have_no_line_conflicts(self, batcher8):
        for layer in decompose_into_layers(batcher8):
            used = set()
            for comp in layer:
                assert comp.low not in used and comp.high not in used
                used.update(comp.lines)

    def test_layer_flattening_preserves_behaviour(self, batcher8):
        from repro.words import all_binary_words

        rebuilt = network_from_layers(8, decompose_into_layers(batcher8))
        for word in list(all_binary_words(8))[::7]:
            assert rebuilt.apply(word) == batcher8.apply(word)

    def test_network_from_layers_rejects_conflicts(self):
        with pytest.raises(ValueError):
            network_from_layers(3, [[Comparator(0, 1), Comparator(1, 2)]])

    def test_sequential_chain_has_depth_equal_to_size(self):
        net = ComparatorNetwork.from_pairs(3, [(0, 1), (1, 2), (0, 1), (1, 2)])
        assert net.depth == net.size


class TestKnuthNotation:
    def test_round_trip(self, fig1_network):
        text = network_to_knuth(fig1_network)
        assert text == "[1,3][2,4][1,2][3,4]"
        assert network_from_knuth(4, text) == fig1_network

    def test_whitespace_tolerated(self):
        net = network_from_knuth(3, " [1,2]  [2,3] ")
        assert net.size == 2

    def test_reversed_comparators_round_trip(self):
        net = ComparatorNetwork(3, [Comparator(0, 2, reversed=True)])
        text = network_to_knuth(net)
        assert text == "~[1,3]"
        assert network_from_knuth(3, text) == net

    def test_larger_first_endpoint_means_reversed(self):
        net = network_from_knuth(3, "[3,1]")
        assert net.comparators[0] == Comparator(0, 2, reversed=True)

    def test_out_of_range_rejected(self):
        with pytest.raises(SerializationError):
            network_from_knuth(3, "[1,4]")

    def test_garbage_rejected(self):
        with pytest.raises(SerializationError):
            network_from_knuth(3, "[1,2]nonsense")

    def test_degenerate_rejected(self):
        with pytest.raises(SerializationError):
            network_from_knuth(3, "[2,2]")


class TestJsonSerialisation:
    def test_dict_round_trip(self, batcher8):
        assert network_from_dict(network_to_dict(batcher8)) == batcher8

    def test_json_round_trip(self, fig1_network):
        assert network_from_json(network_to_json(fig1_network)) == fig1_network

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            network_from_dict({"format": "something-else"})

    def test_malformed_dict_rejected(self):
        with pytest.raises(SerializationError):
            network_from_dict(
                {
                    "format": "repro.comparator_network",
                    "version": 1,
                    "n_lines": 3,
                    "comparators": [{"low": 0}],
                }
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            network_from_json("{not json")

    def test_network_methods_delegate(self, fig1_network):
        assert ComparatorNetwork.from_dict(fig1_network.to_dict()) == fig1_network
        assert ComparatorNetwork.from_knuth(4, fig1_network.to_knuth()) == fig1_network


class TestDiagram:
    def test_render_contains_all_lines(self, fig1_network):
        text = render_network(fig1_network)
        for i in range(4):
            assert f"line {i}" in text

    def test_render_with_input_annotations(self, four_sorter):
        text = render_network(four_sorter, input_word=(4, 1, 3, 2))
        assert "4" in text and "1" in text

    def test_render_trace_mentions_each_comparator(self, fig1_network):
        text = render_trace(fig1_network, (4, 1, 3, 2))
        assert text.count("-->") == fig1_network.size

    def test_render_trace_empty_network(self):
        text = render_trace(ComparatorNetwork.identity(3), (1, 2, 3))
        assert "empty network" in text
