"""Unit tests for :mod:`repro.core.comparator`."""

from __future__ import annotations

import pytest

from repro.core import Comparator
from repro.exceptions import InvalidComparatorError


class TestConstruction:
    def test_basic_construction(self):
        comp = Comparator(1, 3)
        assert comp.low == 1
        assert comp.high == 3
        assert comp.standard
        assert not comp.reversed

    def test_reversed_construction(self):
        comp = Comparator(0, 2, reversed=True)
        assert comp.reversed
        assert not comp.standard

    def test_equal_endpoints_rejected(self):
        with pytest.raises(InvalidComparatorError):
            Comparator(2, 2)

    def test_descending_endpoints_rejected(self):
        with pytest.raises(InvalidComparatorError):
            Comparator(3, 1)

    def test_negative_endpoints_rejected(self):
        with pytest.raises(InvalidComparatorError):
            Comparator(-1, 2)

    def test_non_integer_endpoints_rejected(self):
        with pytest.raises(InvalidComparatorError):
            Comparator(0.5, 2)  # type: ignore[arg-type]

    def test_comparators_are_hashable_and_equal_by_value(self):
        assert Comparator(0, 1) == Comparator(0, 1)
        assert Comparator(0, 1) != Comparator(0, 1, reversed=True)
        assert len({Comparator(0, 1), Comparator(0, 1)}) == 1


class TestIntrospection:
    def test_lines_and_span(self):
        comp = Comparator(2, 6)
        assert comp.lines == (2, 6)
        assert comp.span == 4

    def test_adjacent_comparator_has_span_one(self):
        assert Comparator(3, 4).span == 1

    def test_touches(self):
        comp = Comparator(1, 4)
        assert comp.touches(1)
        assert comp.touches(4)
        assert not comp.touches(2)

    def test_overlaps(self):
        assert Comparator(0, 2).overlaps(Comparator(2, 3))
        assert Comparator(0, 2).overlaps(Comparator(0, 5))
        assert not Comparator(0, 1).overlaps(Comparator(2, 3))

    def test_iteration_yields_endpoints(self):
        assert list(Comparator(5, 9)) == [5, 9]


class TestApplication:
    def test_standard_routes_min_to_low(self):
        assert Comparator(0, 2).apply((3, 5, 1)) == (1, 5, 3)

    def test_standard_leaves_ordered_pair(self):
        assert Comparator(0, 1).apply((1, 2)) == (1, 2)

    def test_reversed_routes_max_to_low(self):
        assert Comparator(0, 2, reversed=True).apply((1, 5, 3)) == (3, 5, 1)

    def test_apply_out_of_range_raises(self):
        with pytest.raises(InvalidComparatorError):
            Comparator(0, 5).apply((1, 2))

    def test_apply_handles_equal_values(self):
        assert Comparator(0, 1).apply((7, 7)) == (7, 7)


class TestTransformations:
    def test_shifted(self):
        assert Comparator(1, 3).shifted(2) == Comparator(3, 5)

    def test_relabelled_preserving_order(self):
        comp = Comparator(0, 1).relabelled({0: 2, 1: 5})
        assert comp == Comparator(2, 5)

    def test_relabelled_swapping_order_flips_reversed(self):
        comp = Comparator(0, 1).relabelled({0: 5, 1: 2})
        assert comp.low == 2 and comp.high == 5
        assert comp.reversed

    def test_relabelled_collision_raises(self):
        with pytest.raises(InvalidComparatorError):
            Comparator(0, 1).relabelled({0: 3, 1: 3})

    def test_dual_mirrors_endpoints(self):
        assert Comparator(0, 2).dual(4) == Comparator(1, 3)
        assert Comparator(1, 3).dual(4) == Comparator(0, 2)

    def test_dual_out_of_range_raises(self):
        with pytest.raises(InvalidComparatorError):
            Comparator(0, 5).dual(4)

    def test_dual_is_involution(self):
        comp = Comparator(2, 6, reversed=True)
        assert comp.dual(9).dual(9) == comp

    def test_flipped_toggles_orientation(self):
        comp = Comparator(0, 3)
        assert comp.flipped().reversed
        assert comp.flipped().flipped() == comp
