"""Hypothesis property-based tests for the core invariants.

These cover the library's load-bearing identities on randomly generated
networks and words:

* scalar and vectorised evaluation agree;
* standard networks are monotone and never unsort sorted inputs;
* the zero–one principle (via threshold images);
* complement–reverse duality;
* serialisation round-trips;
* cover/chain bijections;
* the Lemma 2.1 construction on random unsorted words.
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core import ComparatorNetwork, apply_network_to_batch
from repro.core.serialization import (
    network_from_json,
    network_from_knuth,
    network_to_json,
    network_to_knuth,
)
from repro.testsets import near_sorter, sorts_exactly_all_but
from repro.words import (
    complement_reverse,
    count_ones,
    cover_of_permutation,
    dominates,
    is_sorted_word,
    permutation_from_chain,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def networks(draw, min_lines: int = 2, max_lines: int = 7, max_size: int = 12):
    """A random standard comparator network."""
    n = draw(st.integers(min_lines, max_lines))
    size = draw(st.integers(0, max_size))
    comparators = []
    for _ in range(size):
        low = draw(st.integers(0, n - 2))
        high = draw(st.integers(low + 1, n - 1))
        comparators.append((low, high))
    return ComparatorNetwork.from_pairs(n, comparators)


@st.composite
def network_and_word(draw):
    network = draw(networks())
    word = tuple(
        draw(st.lists(st.integers(0, 1), min_size=network.n_lines, max_size=network.n_lines))
    )
    return network, word


@st.composite
def network_and_general_word(draw):
    network = draw(networks())
    word = tuple(
        draw(
            st.lists(
                st.integers(-50, 50),
                min_size=network.n_lines,
                max_size=network.n_lines,
            )
        )
    )
    return network, word


@st.composite
def permutations_strategy(draw, min_n: int = 1, max_n: int = 7):
    n = draw(st.integers(min_n, max_n))
    return tuple(draw(st.permutations(range(n))))


# ----------------------------------------------------------------------
# Evaluation invariants
# ----------------------------------------------------------------------


@given(network_and_word())
def test_scalar_and_batch_evaluation_agree(data):
    network, word = data
    scalar = network.apply(word)
    batch = apply_network_to_batch(network, np.asarray([word], dtype=np.int8))
    assert tuple(int(v) for v in batch[0]) == scalar


@given(network_and_general_word())
def test_output_is_a_permutation_of_the_input(data):
    network, word = data
    assert sorted(network.apply(word)) == sorted(word)


@given(network_and_general_word())
def test_sorted_inputs_stay_sorted(data):
    network, word = data
    sorted_word = tuple(sorted(word))
    assert network.apply(sorted_word) == sorted_word


@given(networks(), st.data())
def test_monotonicity_of_standard_networks(network, data):
    n = network.n_lines
    lower = tuple(data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)))
    upper = tuple(min(1, l + data.draw(st.integers(0, 1))) for l in lower)
    assert dominates(lower, upper)
    assert dominates(network.apply(lower), network.apply(upper))


@given(network_and_general_word())
def test_zero_one_principle_via_threshold_images(data):
    from repro.properties import threshold_words

    network, word = data
    sorts_word_directly = is_sorted_word(network.apply(word))
    sorts_all_images = all(
        is_sorted_word(network.apply(image)) for image in threshold_words(word)
    )
    assert sorts_word_directly == sorts_all_images


@given(network_and_word())
def test_complement_reverse_duality(data):
    network, word = data
    assert network.dual().apply(complement_reverse(word)) == complement_reverse(
        network.apply(word)
    )


@given(networks())
def test_dual_is_an_involution(network):
    assert network.dual().dual() == network


@given(networks())
def test_depth_bounds(network):
    layers = network.layers()
    assert len(layers) == network.depth
    assert network.depth <= network.size
    if network.size:
        assert network.depth >= 1


# ----------------------------------------------------------------------
# Serialisation round-trips
# ----------------------------------------------------------------------


@given(networks())
def test_knuth_round_trip(network):
    assert network_from_knuth(network.n_lines, network_to_knuth(network)) == network


@given(networks())
def test_json_round_trip(network):
    assert network_from_json(network_to_json(network)) == network


# ----------------------------------------------------------------------
# Covers and chains
# ----------------------------------------------------------------------


@given(permutations_strategy())
def test_cover_chain_bijection(perm):
    assert permutation_from_chain(cover_of_permutation(perm)) == perm


@given(permutations_strategy(min_n=2))
def test_cover_contains_extremes_and_is_graded(perm):
    cover = cover_of_permutation(perm)
    n = len(perm)
    assert cover[0] == (0,) * n
    assert cover[-1] == (1,) * n
    assert [count_ones(w) for w in cover] == list(range(n + 1))


# ----------------------------------------------------------------------
# Lemma 2.1 on random words
# ----------------------------------------------------------------------


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(st.integers(2, 8), st.data())
def test_near_sorter_on_random_unsorted_words(n, data):
    word = tuple(data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)))
    assume(not is_sorted_word(word))
    network = near_sorter(word)
    assert sorts_exactly_all_but(network, word)
