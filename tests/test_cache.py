"""The caching contract of ``docs/CACHING.md``, cross-checked.

The load-bearing guarantee: everything a warm :class:`repro.api.ResultCache`
answers is **bit-identical** to a cold-cache run and to the legacy no-cache
path — verdicts, detection matrices and ``SimulationStats`` counters, across
engines, both detection criteria and odd chunk sizes (hypothesis-driven).
Alongside it: the key/rolling-hash machinery, the LRU byte bound, the
``resolve_cache`` knob semantics and the :class:`repro.api.Session` wiring
(``cache=`` constructor knob, ``REPRO_CACHE`` environment switch,
``CacheStats`` deltas on ``ExecutionInfo``).
"""

from __future__ import annotations

import warnings

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np
import pytest
from strategies import criteria, engines, mutate_one, networks, odd_chunks

import repro.api as api
from repro.cache import (
    ResultCache,
    acquire_prefix_states,
    cached_cube_sorted,
    comparator_codes,
    cube_token,
    default_cache,
    network_token,
    prefix_hashes,
    resolve_cache,
)
from repro.constructions import batcher_sorting_network
from repro.core.evaluation import all_binary_words_array
from repro.faults import enumerate_single_faults, fault_detection_matrix
from repro.faults.simulation import PrefixStates, _pack_vectors
from repro.properties import is_sorter
from repro.testsets import (
    network_passes_test_set,
    sorting_binary_test_set,
    sorts_exactly_all_but,
)


# ----------------------------------------------------------------------
# Keys and rolling prefix hashes
# ----------------------------------------------------------------------
class TestKeys:
    def test_prefix_hashes_extend_rolling(self):
        codes = comparator_codes(batcher_sorting_network(6))
        hashes = prefix_hashes(codes)
        assert len(hashes) == len(codes) + 1
        # Prefix property: the hash sequence of a prefix is a prefix of
        # the hash sequence — the basis of the longest-prefix lookup.
        shorter = prefix_hashes(codes[:4])
        assert hashes[:5] == shorter

    def test_fault_tokens_distinguish_structured_universes(self):
        """Composite / nested faults get distinct structured tokens — the
        verdict keys must separate universes ``repr`` used to conflate."""
        from repro.cache import fault_token, faults_token
        from repro.faults import (
            BridgingFault,
            IntermittentFault,
            LineStuckFault,
            MultiFault,
            StuckPassFault,
        )

        faults = [
            StuckPassFault(0),
            LineStuckFault(0, 1),
            BridgingFault(0, 1, "and"),
            BridgingFault(0, 1, "or"),
            IntermittentFault(StuckPassFault(0), salt=3),
            IntermittentFault(StuckPassFault(0), salt=5),
            MultiFault((StuckPassFault(0), StuckPassFault(1))),
            MultiFault((StuckPassFault(0), BridgingFault(0, 1, "and"))),
        ]
        tokens = [fault_token(f) for f in faults]
        assert len(set(tokens)) == len(faults)
        assert all(hash(t) is not None for t in tokens)  # usable as keys
        assert faults_token(faults) == tuple(tokens)
        assert faults_token(faults[:2]) != faults_token(faults[1::-1])

    def test_network_token_changes_on_any_mutation(self):
        network = batcher_sorting_network(5)
        tokens = {network_token(network)}
        for i in range(network.size):
            tokens.add(network_token(mutate_one(network, i)))
        assert len(tokens) == network.size + 1

    def test_prefix_lookup_finds_longest_common_prefix(self):
        network = batcher_sorting_network(4)
        packed = _pack_vectors(network, all_binary_words_array(4))
        cache = ResultCache()
        states = acquire_prefix_states(
            network, packed, cache=cache, token=cube_token(4)
        )
        codes = comparator_codes(network)
        context = (cube_token(4), "bitpacked", 4, packed.n_blocks)
        for lcp in (network.size, network.size - 1, 1):
            mutant = (
                network if lcp == network.size else mutate_one(network, lcp)
            )
            mcodes = comparator_codes(mutant)
            donor, found = cache.prefix_lookup(
                context, mcodes, prefix_hashes(mcodes)
            )
            assert donor is states
            assert found == lcp
        assert codes == comparator_codes(network)  # lookup never mutates


# ----------------------------------------------------------------------
# resolve_cache knob semantics
# ----------------------------------------------------------------------
class TestResolveCache:
    def test_none_follows_the_caller_default(self):
        assert resolve_cache(None) is None
        assert resolve_cache(None, default=True) is default_cache()

    def test_false_disables_true_selects_process_cache(self):
        assert resolve_cache(False) is None
        assert resolve_cache(False, default=True) is None
        assert resolve_cache(True) is default_cache()

    def test_int_builds_a_bounded_store(self):
        store = resolve_cache(1 << 20)
        assert isinstance(store, ResultCache)
        assert store.max_bytes == 1 << 20
        assert store is not default_cache()

    def test_instance_passes_through(self):
        own = ResultCache(max_bytes=4096)
        assert resolve_cache(own) is own

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)


# ----------------------------------------------------------------------
# The incremental front end: bit-identical to a cold build
# ----------------------------------------------------------------------
class TestAcquirePrefixStates:
    @given(networks(min_lines=3, max_size=10), st.data())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_restored_deltas_bit_identical(self, network, data):
        if network.size == 0:
            return
        packed = _pack_vectors(
            network, all_binary_words_array(network.n_lines)
        )
        cache = ResultCache()
        token = cube_token(network.n_lines)
        # Miss: records everything; must equal a plain cold build.
        first = acquire_prefix_states(network, packed, cache=cache, token=token)
        cold = PrefixStates.build(network, packed)
        assert np.array_equal(first.deltas, cold.deltas)
        # Full hit: the stored record itself comes back.
        again = acquire_prefix_states(network, packed, cache=cache, token=token)
        assert again is first
        # Partial hit on a one-comparator mutant: copied prefix + re-recorded
        # suffix must equal the mutant's own cold build, bit for bit.
        site = data.draw(st.integers(0, network.size - 1), label="site")
        mutant = mutate_one(network, site)
        restored = acquire_prefix_states(
            mutant, packed, cache=cache, token=token
        )
        mutant_cold = PrefixStates.build(mutant, packed)
        assert np.array_equal(restored.deltas, mutant_cold.deltas)
        assert np.array_equal(
            restored.state_after(mutant.size).planes,
            mutant_cold.state_after(mutant.size).planes,
        )

    def test_without_cache_or_token_is_a_plain_build(self):
        network = batcher_sorting_network(4)
        packed = _pack_vectors(network, all_binary_words_array(4))
        cache = ResultCache()
        for kwargs in ({}, {"cache": cache}, {"token": cube_token(4)}):
            states = acquire_prefix_states(network, packed, **kwargs)
            assert np.array_equal(
                states.deltas, PrefixStates.build(network, packed).deltas
            )
        assert cache.stats().entries == 0

    def test_deltas_out_entries_are_private_copies(self):
        network = batcher_sorting_network(4)
        packed = _pack_vectors(network, all_binary_words_array(4))
        cache = ResultCache()
        shared = np.empty(
            (network.size, 2, packed.n_blocks), dtype=packed.planes.dtype
        )
        acquire_prefix_states(
            network, packed, cache=cache, token=cube_token(4),
            deltas_out=shared,
        )
        expected = shared.copy()
        shared.fill(0)  # simulate the shared-memory segment being reused
        kept = acquire_prefix_states(
            network, packed, cache=cache, token=cube_token(4)
        )
        assert np.array_equal(kept.deltas, expected)

    @given(networks(min_lines=2, max_size=8))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cached_cube_sorted_matches_the_plain_checker(self, network):
        cache = ResultCache()
        expected = is_sorter(network, strategy="binary", engine="bitpacked")
        for mutant in (network, mutate_one(network, 0) if network.size else network):
            reference = is_sorter(mutant, strategy="binary", engine="bitpacked")
            assert cached_cube_sorted(mutant, cache=cache) is reference
            # Memo hit gives the same answer.
            assert cached_cube_sorted(mutant, cache=cache) is reference
        assert expected is is_sorter(network, strategy="binary", engine="bitpacked")


# ----------------------------------------------------------------------
# Warm == cold == legacy across engines / criteria / chunk sizes
# ----------------------------------------------------------------------
class TestWarmColdIdentity:
    @given(networks(), engines, criteria, odd_chunks)
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fault_matrix_and_stats(self, network, engine, criterion, chunk):
        faults = enumerate_single_faults(
            network, line_stuck_at_input_only=False
        )
        vectors = all_binary_words_array(network.n_lines)
        legacy = fault_detection_matrix(
            network, faults, vectors, criterion=criterion, engine=engine
        )
        with api.Session(engine=engine, chunk_size=chunk, cache=False) as s:
            cold = s.fault_matrix(network, faults, vectors, criterion=criterion)
        with api.Session(engine=engine, chunk_size=chunk, cache=True) as s:
            fill = s.fault_matrix(network, faults, vectors, criterion=criterion)
            warm = s.fault_matrix(network, faults, vectors, criterion=criterion)
        for result in (cold, fill, warm):
            assert np.array_equal(result.matrix, legacy)
        # SimulationStats replay: a verdict hit merges the recorded
        # counters, so warm counts equal the cold ones exactly.
        assert warm.stats.counts() == cold.stats.counts()
        assert fill.stats.counts() == cold.stats.counts()

    @given(networks(min_lines=3), criteria, odd_chunks)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fault_coverage_any_reduction(self, network, criterion, chunk):
        faults = enumerate_single_faults(network)
        vectors = all_binary_words_array(network.n_lines)
        with api.Session(engine="bitpacked", chunk_size=chunk, cache=False) as s:
            cold = s.fault_coverage(network, faults, vectors, criterion=criterion)
        with api.Session(engine="bitpacked", chunk_size=chunk, cache=True) as s:
            fill = s.fault_coverage(network, faults, vectors, criterion=criterion)
            warm = s.fault_coverage(network, faults, vectors, criterion=criterion)
        for report in (fill, warm):
            assert report.coverage == cold.coverage
            assert report.detected_faults == cold.detected_faults
            assert dict(report.by_kind) == dict(cold.by_kind)
            assert report.stats.counts() == cold.stats.counts()

    @given(networks())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_verify_and_passes_test_set(self, network):
        tests = sorting_binary_test_set(network.n_lines)
        legacy_verdict = is_sorter(network, strategy="binary", engine="bitpacked")
        legacy_passes = network_passes_test_set(network, tests)
        with api.Session(engine="bitpacked", cache=True) as s:
            for _ in range(2):  # second round is answered from the store
                assert (
                    s.verify(network, "sorter", strategy="binary").verdict
                    is legacy_verdict
                )
                assert s.passes_test_set(network, tests).passed is legacy_passes

    def test_permutation_test_sets_fall_back_identically(self, four_sorter):
        permutations = [(3, 1, 0, 2), (0, 2, 1, 3), (1, 0, 3, 2)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = network_passes_test_set(four_sorter, permutations)
            with api.Session(engine="bitpacked", cache=True) as s:
                cached = s.passes_test_set(four_sorter, permutations)
        assert cached.passed is legacy
        assert cached.execution.engine_effective == "vectorized"


# ----------------------------------------------------------------------
# Eviction: the byte bound is a hard ceiling
# ----------------------------------------------------------------------
class TestEviction:
    def test_lru_eviction_pins_the_byte_bound(self):
        budget = 64 * 1024
        cache = ResultCache(max_bytes=budget)
        row = np.zeros(1024, dtype=np.uint8)  # 1 KiB + overhead per entry
        for i in range(256):
            cache.put_verdict(("row", i), row.copy())
            assert cache.stats().stored_bytes <= budget
        stats = cache.stats()
        assert stats.evictions > 0
        assert stats.entries < 256
        # Oldest entries went first; the newest survive.
        assert cache.get_verdict(("row", 255)) is not None
        assert cache.get_verdict(("row", 0)) is None

    def test_prefix_entries_participate_in_the_bound(self):
        network = batcher_sorting_network(8)
        packed = _pack_vectors(network, all_binary_words_array(8))
        token = cube_token(8)
        # Measure one stored record (planes + per-comparator bookkeeping).
        probe = ResultCache()
        acquire_prefix_states(network, packed, cache=probe, token=token)
        entry_bytes = probe.stats().stored_bytes
        cache = ResultCache(max_bytes=2 * entry_bytes)
        acquire_prefix_states(network, packed, cache=cache, token=token)
        for site in range(4):
            acquire_prefix_states(
                mutate_one(network, site), packed, cache=cache, token=token
            )
            assert cache.stats().stored_bytes <= cache.max_bytes
        assert cache.stats().evictions > 0

    def test_oversized_verdicts_are_dropped_not_thrashed(self):
        cache = ResultCache(max_bytes=64 * 1024)
        cache.put_verdict(("small",), b"x" * 128)
        before = cache.stats().stored_bytes
        cache.put_verdict(("giant",), np.zeros(32 * 1024, dtype=np.uint8))
        assert cache.get_verdict(("giant",)) is None
        assert cache.stats().stored_bytes == before
        assert cache.get_verdict(("small",)) is not None

    def test_clear_empties_but_keeps_counters(self):
        cache = ResultCache()
        cache.put_verdict(("k",), True)
        cache.get_verdict(("k",))
        cache.clear()
        stats = cache.stats()
        assert stats.entries == 0 and stats.stored_bytes == 0
        assert stats.verdict_hits == 1


# ----------------------------------------------------------------------
# Session wiring: knob, env switch, ExecutionInfo.cache deltas
# ----------------------------------------------------------------------
class TestSessionWiring:
    def test_cache_knob_spellings(self):
        assert api.Session().cache is None
        assert api.Session(cache=False).cache is None
        owned = api.Session(cache=True).cache
        assert isinstance(owned, ResultCache)
        assert owned is not default_cache()  # Session-owned, not process-wide
        assert api.Session(cache=1 << 20).cache.max_bytes == 1 << 20
        mine = ResultCache(max_bytes=4096)
        assert api.Session(cache=mine).cache is mine

    def test_execution_info_reports_per_call_deltas(self, four_sorter):
        with api.Session(engine="bitpacked", cache=True) as s:
            first = s.verify(four_sorter, "sorter", strategy="binary")
            second = s.verify(four_sorter, "sorter", strategy="binary")
        assert first.execution.cache is not None
        assert first.execution.cache.verdict_hits == 0
        assert second.execution.cache.verdict_hits == 1
        assert second.execution.cache.verdict_misses == 0
        # Gauges stay absolute in the delta.
        assert second.execution.cache.stored_bytes > 0

    def test_uncached_session_reports_no_cache_stats(self, four_sorter):
        with api.Session(engine="bitpacked") as s:
            result = s.verify(four_sorter, "sorter", strategy="binary")
        assert result.execution.cache is None

    def test_repro_cache_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert api.Session.default().cache is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        session = api.Session.default()
        assert isinstance(session.cache, ResultCache)

    def test_sharded_session_matches_serial_with_cache(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        vectors = sorting_binary_test_set(4)
        with api.Session(engine="bitpacked", cache=True) as serial:
            expected = serial.fault_matrix(four_sorter, faults, vectors)
        with api.Session(engine="bitpacked", workers=2, cache=True) as sharded:
            fill = sharded.fault_matrix(four_sorter, faults, vectors)
            warm = sharded.fault_matrix(four_sorter, faults, vectors)
        assert np.array_equal(fill.matrix, expected.matrix)
        assert np.array_equal(warm.matrix, expected.matrix)


# ----------------------------------------------------------------------
# Opt-in-by-default analysis workloads
# ----------------------------------------------------------------------
class TestAnalysisWorkloads:
    @given(networks(min_lines=3, max_lines=5, max_size=8), st.integers(0, 30))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sorts_exactly_all_but_matches_legacy(self, network, word_seed):
        n = network.n_lines
        bits = word_seed % (2 ** n)
        word = tuple((bits >> i) & 1 for i in range(n))
        cached = sorts_exactly_all_but(network, word, cache=ResultCache())
        legacy = sorts_exactly_all_but(network, word, cache=False)
        assert cached is legacy

    def test_reachable_tables_memoised_and_identical(self):
        from repro.analysis.minimal_search import reachable_function_tables

        store = ResultCache()
        plain = reachable_function_tables(3, 1, cache=False)
        first = reachable_function_tables(3, 1, cache=store)
        second = reachable_function_tables(3, 1, cache=store)
        assert second is first  # memo identity on the warm call
        assert first.keys() == plain.keys()
        for key, outputs in plain.items():
            assert np.array_equal(first[key], outputs)
