"""Runtime allocation sanitizer over every ``@allocation_free`` function.

One scenario per decorated function drives its steady-state scratch path
(pre-acquired arena rows, ``out=`` ufuncs) under
:func:`repro.devtools.sanitize.assert_allocation_free` with a transient
budget far below one bit-plane — the planes here are 8 KiB
(``N_BLOCKS = 1024``), so a single plane-sized temporary escaping onto
the hot path blows the budget immediately.  A completeness check pins the
scenario set to the :func:`repro.core.scratch.allocation_free_functions`
registry, so decorating a new function without adding a scenario fails
the suite.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.constructions import batcher_sorting_network
from repro.core.bitpacked import (
    apply_comparators_packed,
    apply_network_packed,
    packed_count_gt_blocks,
    packed_is_sorted_arena,
    packed_selection_violation_blocks,
    packed_unsorted_blocks,
    packed_zero_count_planes,
)
from repro.core.evaluation import all_binary_words_array
from repro.core.scratch import PlaneArena, allocation_free_functions
from repro.devtools.sanitize import (
    AllocationError,
    assert_allocation_free,
    trace_allocations,
)
from repro.faults import ReversedComparatorFault, SimulationStats
from repro.faults.simulation import (
    PrefixStates,
    _detection_row,
    _errors_detect,
    _pack_vectors,
    _pruned_fault_errors,
    _row_from_errors,
)

N_LINES = 8
TILE = 256  # 256 × 2^8 words → 65536 words → 1024 blocks → 8 KiB planes

#: Budget for functions that only write into caller-provided buffers:
#: generous for Python bookkeeping, half of one plane.
TIGHT = 4096


@pytest.fixture(scope="module")
def env():
    """Shared packed batch, prefix record and arena (built untracked)."""
    network = batcher_sorting_network(N_LINES)
    vectors = np.tile(all_binary_words_array(N_LINES), (TILE, 1))
    packed = _pack_vectors(network, vectors)
    n_blocks = packed.n_blocks
    arena = PlaneArena(N_LINES, n_blocks, packed.planes.dtype)
    prefix = PrefixStates.build(network, packed)
    reference = prefix.reference()
    outputs = apply_network_packed(network, packed, copy=True)
    m = max(1, N_LINES.bit_length())
    return SimpleNamespace(
        network=network,
        packed=packed,
        n_blocks=n_blocks,
        num_words=packed.num_words,
        plane_bytes=n_blocks * 8,
        row_bytes=packed.num_words,
        arena=arena,
        prefix=prefix,
        reference=reference,
        outputs=outputs,
        pad=arena.pad_row(packed.num_words).copy(),
        work_planes=packed.planes.copy(),
        row_out=np.zeros(n_blocks, dtype=packed.planes.dtype),
        scratch_row=np.zeros(n_blocks, dtype=packed.planes.dtype),
        scratch_row2=np.zeros(n_blocks, dtype=packed.planes.dtype),
        counter_out=np.zeros((m, n_blocks), dtype=packed.planes.dtype),
        stats=SimulationStats(),
    )


def run_budgeted(fn, *, transient, retained=None, label=""):
    """Warm *fn* up once, then assert the steady-state call's budget."""
    fn()
    with assert_allocation_free(
        max_transient_bytes=transient,
        max_retained_bytes=retained,
        label=label,
    ):
        fn()


# ----------------------------------------------------------------------
# repro.core.bitpacked
# ----------------------------------------------------------------------
def test_apply_comparators_packed(env):
    run_budgeted(
        lambda: apply_comparators_packed(
            env.work_planes, env.network.comparators, out=env.scratch_row
        ),
        transient=TIGHT,
        retained=TIGHT,
        label="apply_comparators_packed",
    )


def test_packed_unsorted_blocks(env):
    run_budgeted(
        lambda: packed_unsorted_blocks(
            env.packed, out=env.row_out, scratch=env.scratch_row, pad=env.pad
        ),
        transient=TIGHT,
        retained=TIGHT,
        label="packed_unsorted_blocks",
    )


def test_packed_zero_count_planes(env):
    run_budgeted(
        lambda: packed_zero_count_planes(
            env.packed,
            out=env.counter_out,
            scratch=(env.scratch_row, env.scratch_row2),
            pad=env.pad,
        ),
        transient=TIGHT,
        retained=TIGHT,
        label="packed_zero_count_planes",
    )


def test_packed_count_gt_blocks(env):
    packed_zero_count_planes(
        env.packed,
        out=env.counter_out,
        scratch=(env.scratch_row, env.scratch_row2),
        pad=env.pad,
    )
    run_budgeted(
        lambda: packed_count_gt_blocks(
            env.counter_out,
            3,
            env.pad,
            out=env.row_out,
            scratch=(env.scratch_row, env.scratch_row2),
        ),
        transient=TIGHT,
        retained=TIGHT,
        label="packed_count_gt_blocks",
    )


def test_packed_is_sorted_arena(env):
    run_budgeted(
        lambda: packed_is_sorted_arena(env.packed, env.arena),
        transient=TIGHT,
        retained=TIGHT,
        label="packed_is_sorted_arena",
    )


def test_packed_selection_violation_blocks(env):
    run_budgeted(
        lambda: packed_selection_violation_blocks(
            env.packed, env.outputs, 4, arena=env.arena, out=env.row_out
        ),
        transient=TIGHT,
        retained=TIGHT,
        label="packed_selection_violation_blocks",
    )


# ----------------------------------------------------------------------
# repro.properties.selector
# ----------------------------------------------------------------------
def test_selection_violations_arena(env):
    """The property checker's violation-mask seam stays allocation-free."""
    from repro.properties.selector import _selection_violations_arena

    run_budgeted(
        lambda: _selection_violations_arena(
            env.packed, env.outputs, 4, env.arena, env.row_out
        ),
        transient=TIGHT,
        retained=TIGHT,
        label="_selection_violations_arena",
    )


# ----------------------------------------------------------------------
# repro.properties.sorter / repro.properties.merger
# ----------------------------------------------------------------------
def test_sorting_violations_arena(env):
    """The sorter checker's violation-mask seam stays allocation-free."""
    from repro.properties.sorter import _sorting_violations_arena

    run_budgeted(
        lambda: _sorting_violations_arena(env.outputs, env.arena, env.row_out),
        transient=TIGHT,
        retained=TIGHT,
        label="_sorting_violations_arena",
    )


def test_merging_violations_arena(env):
    """The merger checker's violation-mask seam stays allocation-free."""
    from repro.properties.merger import _merging_violations_arena

    run_budgeted(
        lambda: _merging_violations_arena(env.outputs, env.arena, env.row_out),
        transient=TIGHT,
        retained=TIGHT,
        label="_merging_violations_arena",
    )


# ----------------------------------------------------------------------
# repro.faults.simulation
# ----------------------------------------------------------------------
def test_prefix_state_after(env):
    run_budgeted(
        lambda: env.prefix.state_after(5, out=env.arena.state),
        transient=TIGHT,
        retained=TIGHT,
        label="PrefixStates.state_after",
    )


def test_pruned_fault_errors(env):
    fault = ReversedComparatorFault(0)
    run_budgeted(
        lambda: _pruned_fault_errors(
            env.network, fault, env.prefix, env.stats, env.arena
        ),
        transient=TIGHT,
        retained=TIGHT,
        label="_pruned_fault_errors",
    )


def test_errors_detect(env):
    planes = env.reference.planes
    ref_pair_any = [
        bool((planes[j] & ~planes[j + 1] & env.pad).any())
        for j in range(N_LINES - 1)
    ]
    err = _pruned_fault_errors(
        env.network, ReversedComparatorFault(0), env.prefix, env.stats,
        env.arena,
    )
    assert isinstance(err, dict) and err, "fixture fault should leave errors"
    run_budgeted(
        lambda: _errors_detect(
            env.reference, err, "specification", env.pad, ref_pair_any,
            arena=env.arena,
        ),
        transient=TIGHT,
        retained=TIGHT,
        label="_errors_detect",
    )


def test_detection_row(env):
    # The unpacked boolean result row (num_words bytes) and the unpack
    # buffer are irreducible; plane-sized sweep temporaries are not.
    run_budgeted(
        lambda: _detection_row(
            env.reference, env.reference, "specification", arena=env.arena
        ),
        transient=3 * env.row_bytes + TIGHT,
        retained=env.row_bytes + TIGHT,
        label="_detection_row",
    )


def test_row_from_errors(env):
    err = _pruned_fault_errors(
        env.network, ReversedComparatorFault(0), env.prefix, env.stats,
        env.arena,
    )
    assert isinstance(err, dict) and err
    run_budgeted(
        lambda: _row_from_errors(
            env.reference, err, "specification", env.pad, env.arena
        ),
        transient=3 * env.row_bytes + TIGHT,
        retained=env.row_bytes + TIGHT,
        label="_row_from_errors",
    )


# ----------------------------------------------------------------------
# Completeness: every registered function has a scenario above
# ----------------------------------------------------------------------
COVERED = {
    "repro.core.bitpacked.apply_comparators_packed",
    "repro.core.bitpacked.packed_unsorted_blocks",
    "repro.core.bitpacked.packed_zero_count_planes",
    "repro.core.bitpacked.packed_count_gt_blocks",
    "repro.core.bitpacked.packed_is_sorted_arena",
    "repro.core.bitpacked.packed_selection_violation_blocks",
    "repro.properties.selector._selection_violations_arena",
    "repro.properties.sorter._sorting_violations_arena",
    "repro.properties.merger._merging_violations_arena",
    "repro.faults.simulation.PrefixStates.state_after",
    "repro.faults.simulation._pruned_fault_errors",
    "repro.faults.simulation._errors_detect",
    "repro.faults.simulation._detection_row",
    "repro.faults.simulation._row_from_errors",
}


def test_every_registered_function_has_a_scenario():
    registered = {
        f"{fn.__module__}.{fn.__qualname__}"
        for fn in allocation_free_functions()
    }
    assert registered == COVERED


def test_registry_marks_functions():
    for fn in allocation_free_functions():
        assert getattr(fn, "__allocation_free__", False) is True


# ----------------------------------------------------------------------
# The sanitizer itself: an allocating control must fail
# ----------------------------------------------------------------------
def test_allocating_control_trips_transient_budget(env):
    def control(a):
        return (a & a) | a  # two plane-sized temporaries

    control(env.work_planes)
    with pytest.raises(AllocationError, match="transient"), assert_allocation_free(
        max_transient_bytes=TIGHT, label="control"
    ):
        control(env.work_planes)


def test_retained_budget_trips_on_survivors():
    keep = []
    with pytest.raises(AllocationError, match="retained"), assert_allocation_free(
        max_transient_bytes=1 << 20, max_retained_bytes=1024
    ):
        keep.append(np.zeros(100_000, dtype=np.uint8))
    assert keep


def test_trace_allocations_reports_byte_counts():
    with trace_allocations() as outer:
        buf = np.zeros(50_000, dtype=np.uint8)
        with trace_allocations() as inner:
            np.zeros(80_000, dtype=np.uint8)  # dropped before exit
        del buf
    assert inner.transient_bytes >= 80_000
    assert outer.retained_bytes < 50_000
