"""The :mod:`repro.observe` instrumentation layer: counters, spans, traces.

Three layers of pinning:

* unit behaviour of :class:`~repro.observe.Metrics` (fixed schema,
  pack/merge wire format) and :class:`~repro.observe.Span` /
  :class:`~repro.observe.Trace` (with-block nesting = tree, JSON round
  trip, the process-wide kill switch);
* structural invariants of real :class:`repro.api.Session` traces —
  every child span's interval nests inside its parent's;
* the counter-identity guarantee: the totals a trace exports are
  bit-for-bit the legacy :class:`~repro.faults.SimulationStats` /
  :class:`~repro.cache.CacheStats` numbers, for every registered fault
  model, whether the work ran serial, sharded across a real
  :class:`~repro.parallel.pool.WorkerPool`, or replayed from a warm
  cache.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.api as api
from repro._registry import fault_model_names
from repro.constructions import batcher_sorting_network
from repro.core.evaluation import all_binary_words_array
from repro.faults import SimulationStats, enumerate_model_faults
from repro.faults.simulation import fault_detection_matrix
from repro.observe import (
    Metrics,
    Trace,
    global_metrics,
    observation_enabled,
    set_observation_enabled,
)
from repro.parallel import ExecutionConfig
from tests.strategies import criteria, fault_universes, networks

import numpy as np

# ----------------------------------------------------------------------
# Metrics: fixed-schema counters and the pack/merge wire format
# ----------------------------------------------------------------------
class TestMetrics:
    def test_schema_and_counting(self):
        m = Metrics(("hits", "misses"), initial={"hits": 2})
        assert m.names == ("hits", "misses")
        assert m.get("hits") == 2 and m.get("misses") == 0
        m.increment("hits")
        m.increment("misses", 5)
        m.set("hits", 10)
        assert m.as_dict() == {"hits": 10, "misses": 5}
        m.reset()
        assert m.pack() == (0, 0)

    def test_unknown_names_raise(self):
        m = Metrics(("a",))
        with pytest.raises(KeyError):
            m.get("b")
        with pytest.raises(KeyError):
            m.set("b", 1)
        with pytest.raises(KeyError):
            m.increment("b")

    def test_duplicate_schema_rejected(self):
        with pytest.raises(ValueError):
            Metrics(("a", "a"))

    def test_pack_merge_roundtrip(self):
        a = Metrics(("x", "y", "z"), initial={"x": 1, "y": 2, "z": 3})
        b = Metrics(("x", "y", "z"))
        b.merge_packed(a.pack())
        b.merge_packed(a.pack())
        assert b.pack() == (2, 4, 6)
        with pytest.raises(ValueError):
            b.merge_packed((1, 2))

    def test_merge_requires_matching_schema(self):
        a = Metrics(("x", "y"), initial={"x": 1})
        b = Metrics(("x", "y"), initial={"y": 4})
        a.merge(b)
        assert a.as_dict() == {"x": 1, "y": 4}
        with pytest.raises(ValueError):
            a.merge(Metrics(("x",)))

    def test_equality_and_repr(self):
        a = Metrics(("x",), initial={"x": 7})
        b = Metrics(("x",), initial={"x": 7})
        assert a == b
        assert a != Metrics(("x",))
        assert (a == object()) is False or (a == object()) is NotImplemented
        assert "x" in repr(a)

    def test_global_metrics_is_a_singleton_registry(self):
        g = global_metrics()
        assert g is global_metrics()
        assert "engine_downgrades" in g.names


# ----------------------------------------------------------------------
# Spans and traces: nesting, round trip, kill switch
# ----------------------------------------------------------------------
def assert_nested(span, parent=None):
    """Recursively assert the span-tree interval invariant."""
    start, end = span.interval
    assert end >= start and span.seconds >= 0.0
    if parent is not None:
        p_start, p_end = parent.interval
        assert p_start <= start and end <= p_end
    for child in span.children:
        assert_nested(child, span)


class TestSpans:
    def test_with_nesting_builds_the_tree(self):
        trace = Trace()
        with trace.span("outer", kind="demo") as outer:
            with trace.span("first"):
                pass
            with trace.span("second") as second:
                with trace.span("leaf"):
                    pass
        assert trace.root is outer
        assert [c.name for c in outer.children] == ["first", "second"]
        assert [c.name for c in second.children] == ["leaf"]
        assert outer.meta == {"kind": "demo"}
        assert_nested(outer)

    def test_add_counters_accumulates(self):
        trace = Trace()
        with trace.span("work") as span:
            span.add_counters({"faults": 3})
            span.add_counters({"faults": 2, "hits": 1})
        assert span.counters == {"faults": 5, "hits": 1}

    def test_empty_trace(self):
        trace = Trace()
        assert trace.root is None
        assert trace.epoch == 0.0
        assert trace.to_dict() == {"spans": []}

    def test_export_rebases_to_epoch(self):
        trace = Trace()
        with trace.span("root"):
            with trace.span("child"):
                pass
        payload = trace.to_dict()
        assert payload["spans"][0]["start"] == 0.0
        child = payload["spans"][0]["children"][0]
        assert child["start"] >= 0.0

    def test_json_round_trip_is_bit_stable(self):
        trace = Trace()
        with trace.span("root", engine="bitpacked") as root:
            with trace.span("phase"):
                pass
            root.add_counters({"faults": 4})
        rebuilt = Trace.from_json(trace.to_json())
        assert rebuilt == trace
        assert rebuilt.to_json() == trace.to_json()
        again = Trace.from_json(rebuilt.to_json())
        assert again.to_json() == rebuilt.to_json()

    def test_trace_equality_and_repr(self):
        trace = Trace()
        with trace.span("only"):
            pass
        assert (trace == object()) is False or trace.__eq__(object()) is NotImplemented
        assert "only" in repr(trace)
        assert "only" in repr(trace.root)

    def test_kill_switch_hands_out_inert_spans(self):
        assert observation_enabled()
        previous = set_observation_enabled(False)
        try:
            assert previous is True
            assert not observation_enabled()
            trace = Trace()
            with trace.span("dark") as span:
                span.add_counters({"faults": 1})
            assert trace.roots == []
            assert span.counters == {}
            assert span.seconds == 0.0
        finally:
            set_observation_enabled(previous)
        assert observation_enabled()


# ----------------------------------------------------------------------
# Real session traces: structure and counter identity
# ----------------------------------------------------------------------
def sim_counters(trace):
    """The simulation-counter subset of a trace's root counters."""
    schema = SimulationStats().metrics.names
    return {k: v for k, v in trace.root.counters.items() if k in schema}


def test_session_trace_structure_and_cache_counters():
    network = batcher_sorting_network(6)
    faults = enumerate_model_faults(network, "ReversedComparatorFault")
    vectors = all_binary_words_array(6)
    with api.Session(engine="bitpacked", cache=True) as s:
        cold = s.fault_matrix(network, faults, vectors)
        warm = s.fault_matrix(network, faults, vectors)
    for result in (cold, warm):
        trace = result.execution.trace
        assert trace is not None
        root = trace.root
        assert root.name == "session.fault_matrix"
        assert [c.name for c in root.children] == ["simulate"]
        assert_nested(root)
        assert result.execution.seconds == root.seconds
        # The root counters are bit-for-bit the legacy stats numbers.
        assert sim_counters(trace) == result.stats.metrics.as_dict()
        cache_delta = result.execution.cache
        for name in type(cache_delta)._COUNTERS:
            assert root.counters[f"cache.{name}"] == getattr(cache_delta, name)
    assert warm.execution.cache.verdict_hits > 0
    # Round trip through JSON preserves the real trace exactly.
    rebuilt = Trace.from_json(cold.execution.trace.to_json())
    assert rebuilt.to_json() == cold.execution.trace.to_json()


def test_verify_trace_nests_the_property_phase():
    network = batcher_sorting_network(8)
    with api.Session(engine="bitpacked") as s:
        result = s.verify(network, "sorter")
    trace = result.execution.trace
    assert trace.root.name == "session.verify"
    assert [c.name for c in trace.root.children] == ["sorter"]
    assert trace.root.meta["property"] == "sorter"
    assert_nested(trace.root)


@given(network=networks(min_lines=3, max_lines=6), data=st.data())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_trace_counters_match_serial_and_warm_cache(network, data):
    """For every registered model: the counters a session trace exports
    equal the serial free-function stats, cold and warm-cache alike."""
    name, faults = data.draw(fault_universes(network), label="universe")
    if not faults:
        return
    criterion = data.draw(criteria, label="criterion")
    vectors = all_binary_words_array(network.n_lines)
    serial_stats = SimulationStats()
    serial = fault_detection_matrix(
        network, faults, vectors, criterion=criterion,
        engine="bitpacked", stats=serial_stats,
    )
    with api.Session(engine="bitpacked", cache=True) as s:
        cold = s.fault_matrix(network, faults, vectors, criterion=criterion)
        warm = s.fault_matrix(network, faults, vectors, criterion=criterion)
    assert np.array_equal(cold.matrix, serial), name
    expected = serial_stats.metrics.as_dict()
    assert sim_counters(cold.execution.trace) == expected, name
    assert sim_counters(warm.execution.trace) == expected, name


def test_trace_counters_match_on_a_real_shard_pool():
    """Sharded across two worker processes, every registered model's trace
    exports exactly the serial counter totals."""
    network = batcher_sorting_network(5)
    vectors = all_binary_words_array(5)
    with api.Session(engine="bitpacked", workers=2, chunk_size=16) as s:
        for name in fault_model_names():
            faults = enumerate_model_faults(network, name)
            sharded = s.fault_matrix(network, faults, vectors)
            serial_stats = SimulationStats()
            serial = fault_detection_matrix(
                network, faults, vectors, engine="bitpacked",
                config=ExecutionConfig(max_workers=1, chunk_size=16),
                stats=serial_stats,
            )
            assert np.array_equal(sharded.matrix, serial), name
            assert sim_counters(sharded.execution.trace) == (
                serial_stats.metrics.as_dict()
            ), name
            assert_nested(sharded.execution.trace.root)


def test_disabled_capture_yields_no_trace():
    network = batcher_sorting_network(4)
    previous = set_observation_enabled(False)
    try:
        with api.Session(engine="bitpacked") as s:
            result = s.verify(network, "sorter")
    finally:
        set_observation_enabled(previous)
    assert result.verdict is True
    assert result.execution.trace is None
    assert result.execution.seconds == 0.0
