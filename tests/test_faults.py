"""Unit tests for the VLSI fault-model substrate.

The differential-oracle layer at the bottom pins every *registered* fault
model (single stuck-at, bridging, intermittent, k-subset multi-faults) to
a brute-force injection oracle — apply the faulted copy of the device with
the plain batch evaluator, no bit-plane tricks — and requires the pruned,
streamed and warm-cache simulator paths to reproduce that matrix bit for
bit with identical :class:`repro.faults.SimulationStats` counters.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np
import pytest
from strategies import criteria, fault_universes, networks, odd_chunks

import repro.api as api
from repro._registry import fault_model_names
from repro.constructions import batcher_sorting_network, optimal_sorting_network
from repro.core import all_binary_words_array, apply_network_to_batch
from repro.core.evaluation import batch_is_sorted
from repro.exceptions import FaultModelError
from repro.faults import (
    BridgingFault,
    CubeVectors,
    IntermittentFault,
    LineStuckFault,
    MultiFault,
    ReversedComparatorFault,
    SimulationStats,
    StuckPassFault,
    StuckSwapFault,
    compare_test_sets,
    coverage_report,
    detected_faults,
    enumerate_model_faults,
    enumerate_multi_faults,
    enumerate_single_faults,
    equivalent_fault_classes,
    fault_coverage,
    fault_detection_matrix,
    greedy_test_selection,
    undetected_faults,
)
from repro.parallel import ExecutionConfig
from repro.properties import is_sorter
from repro.testsets import sorting_binary_test_set
from repro.words import all_binary_words


class TestFaultModels:
    def test_stuck_pass_removes_a_comparator(self, four_sorter):
        faulty = StuckPassFault(0).apply_to(four_sorter)
        assert faulty.size == four_sorter.size - 1
        assert not is_sorter(faulty, strategy="binary")

    def test_reversed_fault_flips_a_comparator(self, four_sorter):
        faulty = ReversedComparatorFault(1).apply_to(four_sorter)
        assert faulty.size == four_sorter.size
        assert not faulty.standard
        assert not is_sorter(faulty, strategy="binary")

    def test_stuck_swap_always_exchanges(self, four_sorter):
        faulty = StuckSwapFault(0).apply_to(four_sorter)
        # On an input where the first comparator would not normally act,
        # the faulty device swaps anyway.
        comp = four_sorter.comparators[0]
        word = [0] * 4
        word[comp.low], word[comp.high] = 0, 1  # already in order
        clean = four_sorter.apply(tuple(word))
        broken = faulty.apply(tuple(word))
        assert clean != broken or not is_sorter(faulty, strategy="binary")

    def test_stuck_swap_batch_agrees_with_scalar(self, four_sorter):
        faulty = StuckSwapFault(2).apply_to(four_sorter)
        inputs = all_binary_words_array(4)
        batch_outputs = apply_network_to_batch(faulty, inputs)
        for row_in, row_out in zip(inputs, batch_outputs):
            assert tuple(int(v) for v in row_out) == faulty.apply(
                tuple(int(v) for v in row_in)
            )

    def test_line_stuck_fault(self, four_sorter):
        faulty = LineStuckFault(line=0, value=1).apply_to(four_sorter)
        # With line 0 stuck at 1, the all-zero input cannot come out all-zero.
        assert faulty.apply((0, 0, 0, 0)) != (0, 0, 0, 0)
        assert not is_sorter(faulty, strategy="binary")

    def test_line_stuck_batch_agrees_with_scalar(self, four_sorter):
        faulty = LineStuckFault(line=2, value=0, stage=1).apply_to(four_sorter)
        inputs = all_binary_words_array(4)
        batch_outputs = apply_network_to_batch(faulty, inputs)
        for row_in, row_out in zip(inputs, batch_outputs):
            assert tuple(int(v) for v in row_out) == faulty.apply(
                tuple(int(v) for v in row_in)
            )

    def test_invalid_parameters_rejected(self, four_sorter):
        with pytest.raises(FaultModelError):
            StuckPassFault(99).apply_to(four_sorter)
        with pytest.raises(FaultModelError):
            LineStuckFault(line=0, value=2)
        with pytest.raises(FaultModelError):
            LineStuckFault(line=9, value=0).apply_to(four_sorter)

    def test_fault_descriptions(self):
        assert "stuck-pass" in StuckPassFault(3).describe()
        assert "stuck-at-1" in LineStuckFault(2, 1).describe()
        assert "bridged" in BridgingFault(0, 1, "or").describe()
        assert "intermittent" in IntermittentFault(StuckPassFault(0)).describe()
        assert "multiple faults" in MultiFault(
            (StuckPassFault(0), StuckSwapFault(1))
        ).describe()


class TestCompositeFaultModels:
    """Scalar/batch/packed agreement and validation for the model zoo."""

    ZOO = (
        BridgingFault(1, 2, "and"),
        BridgingFault(2, 3, "or"),
        IntermittentFault(LineStuckFault(0, 1), salt=5),
        IntermittentFault(StuckSwapFault(1), salt=3),
        MultiFault((StuckSwapFault(0), LineStuckFault(3, 0))),
        MultiFault(
            (StuckPassFault(0), ReversedComparatorFault(1), BridgingFault(2, 3, "or"))
        ),
    )

    @pytest.mark.parametrize("fault", ZOO, ids=repr)
    def test_scalar_batch_and_packed_agree(self, four_sorter, fault):
        from repro.core.bitpacked import pack_batch, unpack_batch

        faulty = fault.apply_to(four_sorter)
        inputs = all_binary_words_array(4)
        batch = apply_network_to_batch(faulty, inputs)
        for row_in, row_out in zip(inputs, batch):
            assert tuple(int(v) for v in row_out) == faulty.apply(
                tuple(int(v) for v in row_in)
            )
        packed = unpack_batch(faulty.apply_packed(pack_batch(inputs), copy=True))
        assert np.array_equal(packed, batch)

    def test_invalid_parameters_rejected(self, four_sorter):
        with pytest.raises(FaultModelError):
            BridgingFault(0, 2)  # not adjacent
        with pytest.raises(FaultModelError):
            BridgingFault(2, 1)
        with pytest.raises(FaultModelError):
            BridgingFault(0, 1, coupling="xor")
        with pytest.raises(FaultModelError):
            BridgingFault(3, 4).apply_to(four_sorter)  # out of range
        with pytest.raises(FaultModelError):
            IntermittentFault("not a fault")
        with pytest.raises(FaultModelError):
            IntermittentFault(StuckPassFault(0), salt=0)
        with pytest.raises(FaultModelError):
            # Salt selects lines the 4-line device does not have.
            IntermittentFault(StuckPassFault(0), salt=1 << 6).apply_to(four_sorter)
        with pytest.raises(FaultModelError):
            IntermittentFault(IntermittentFault(StuckPassFault(0)))  # no nesting
        with pytest.raises(FaultModelError):
            MultiFault(())
        with pytest.raises(FaultModelError):
            # Two faults on one comparator conflict.
            MultiFault((StuckPassFault(0), StuckSwapFault(0)))
        with pytest.raises(FaultModelError):
            # Two forcings of one line conflict.
            MultiFault((LineStuckFault(1, 0), LineStuckFault(1, 1)))
        with pytest.raises(FaultModelError):
            # Re-bridging one pair conflicts.
            MultiFault((BridgingFault(0, 1, "and"), BridgingFault(0, 1, "or")))
        with pytest.raises(FaultModelError):
            MultiFault((StuckPassFault(0), IntermittentFault(StuckSwapFault(1))))

    def test_enumerate_for_counts(self, four_sorter):
        assert len(BridgingFault.enumerate_for(four_sorter)) == 2 * 3
        assert len(IntermittentFault.enumerate_for(four_sorter)) == 2 * 4
        assert all(
            isinstance(f, MultiFault) and len(f.faults) == 2
            for f in MultiFault.enumerate_for(four_sorter)
        )

    def test_intermittent_activation_depends_only_on_input_content(self, four_sorter):
        """The salted-parity activation is a pure function of the input word,
        so streamed / sharded chunk boundaries cannot change verdicts."""
        fault = IntermittentFault(StuckSwapFault(0), salt=0b101)
        faulty = fault.apply_to(four_sorter)
        clean_device = four_sorter
        broken = StuckSwapFault(0).apply_to(four_sorter)
        for word in all_binary_words(4):
            parity = (word[0] ^ word[2]) & 1
            expected = broken.apply(word) if parity else clean_device.apply(word)
            assert faulty.apply(word) == expected


class TestFaultEnumeration:
    def test_enumeration_counts(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        expected = 3 * four_sorter.size + 2 * four_sorter.n_lines
        assert len(faults) == expected

    def test_enumeration_subset_of_kinds(self, four_sorter):
        faults = enumerate_single_faults(four_sorter, kinds=("stuck-pass",))
        assert len(faults) == four_sorter.size
        assert all(isinstance(f, StuckPassFault) for f in faults)

    def test_unknown_kind_rejected(self, four_sorter):
        with pytest.raises(FaultModelError):
            enumerate_single_faults(four_sorter, kinds=("gremlin",))

    def test_equivalent_fault_classes_group_identical_behaviour(self, four_sorter):
        faults = enumerate_single_faults(four_sorter, kinds=("stuck-pass", "reversed"))
        classes = equivalent_fault_classes(four_sorter, faults)
        assert sum(len(c) for c in classes) == len(faults)
        assert len(classes) >= 2


class TestFaultSimulation:
    def test_detection_matrix_shape(self, four_sorter):
        faults = enumerate_single_faults(four_sorter, kinds=("stuck-pass",))
        vectors = sorting_binary_test_set(4)
        matrix = fault_detection_matrix(four_sorter, faults, vectors)
        assert matrix.shape == (len(faults), len(vectors))

    def test_specification_criterion_equals_nonsorter_detection(self, four_sorter):
        faults = enumerate_single_faults(four_sorter, kinds=("stuck-pass",))
        vectors = list(all_binary_words(4))
        matrix = fault_detection_matrix(
            four_sorter, faults, vectors, criterion="specification"
        )
        for fault, row in zip(faults, matrix):
            faulty = fault.apply_to(four_sorter)
            assert bool(row.any()) == (not is_sorter(faulty, strategy="binary"))

    def test_reference_criterion_is_at_least_as_sensitive(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        vectors = list(all_binary_words(4))
        spec = fault_detection_matrix(four_sorter, faults, vectors, criterion="specification")
        ref = fault_detection_matrix(four_sorter, faults, vectors, criterion="reference")
        assert bool(np.all(ref | ~spec))

    def test_unknown_criterion_rejected(self, four_sorter):
        with pytest.raises(FaultModelError):
            fault_detection_matrix(four_sorter, [], [], criterion="psychic")

    def test_detected_and_undetected_partition(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        vectors = sorting_binary_test_set(4)
        found = detected_faults(four_sorter, faults, vectors)
        missed = undetected_faults(four_sorter, faults, vectors)
        assert len(found) + len(missed) == len(faults)

    def test_large_valued_vectors_do_not_overflow(self, four_sorter):
        """Regression: the detection batch used to be built with the default
        int8 dtype, so permutation-style vectors with values above 127
        silently wrapped (e.g. 200 -> -56) and corrupted both criteria.  The
        matrix must now match the scalar reference exactly."""
        faults = enumerate_single_faults(
            four_sorter, kinds=("stuck-pass", "stuck-swap", "reversed")
        )
        vectors = [
            (400, 300, 200, 100),
            (100, 400, 200, 300),
            (1, 128, 129, 127),
        ]
        for criterion in ("specification", "reference"):
            matrix = fault_detection_matrix(
                four_sorter, faults, vectors, criterion=criterion
            )
            reference = fault_detection_matrix(
                four_sorter, faults, vectors, criterion=criterion, engine="scalar"
            )
            assert np.array_equal(matrix, reference), criterion

    def test_large_valued_reference_criterion_detects_reversed_fault(self):
        """Concrete overflow witness: with values straddling the int8 wrap
        point a reversed comparator must still be seen as a defect."""
        network = batcher_sorting_network(4)
        faults = [ReversedComparatorFault(0)]
        vectors = [(200, 150, 300, 250)]
        matrix = fault_detection_matrix(
            network, faults, vectors, criterion="reference"
        )
        assert bool(matrix[0, 0])

    def test_empty_vector_list(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        matrix = fault_detection_matrix(four_sorter, faults, [])
        assert matrix.shape == (len(faults), 0)

    @pytest.mark.parametrize("engine", ["scalar", "vectorized", "bitpacked"])
    def test_engine_selection(self, four_sorter, engine):
        faults = enumerate_single_faults(four_sorter)
        vectors = sorting_binary_test_set(4)
        matrix = fault_detection_matrix(
            four_sorter, faults, vectors, engine=engine
        )
        assert matrix.shape == (len(faults), len(vectors))

    def test_unknown_engine_rejected(self, four_sorter):
        from repro.exceptions import EngineError

        with pytest.raises(EngineError):
            fault_detection_matrix(
                four_sorter, [], [(0, 1, 1, 0)], engine="psychic"
            )


class TestCoverage:
    def test_paper_test_set_achieves_full_specification_coverage_for_standard_faults(self):
        """Theorem 2.2's test set detects every specification-visible fault
        whose faulty device is still a *standard* network (stuck-pass faults).

        For such devices sorted inputs can never fail, so testing only the
        unsorted words loses nothing relative to the full cube.
        """
        device = optimal_sorting_network(5)
        faults = enumerate_single_faults(device, kinds=("stuck-pass",))
        full_cube = list(all_binary_words(5))
        testset = sorting_binary_test_set(5)
        assert fault_coverage(device, faults, testset) == fault_coverage(
            device, faults, full_cube
        )

    def test_nonstandard_faults_can_escape_the_paper_test_set(self):
        """A stuck-swap fault can corrupt *sorted* inputs only, escaping the
        unsorted-words test set — the paper's model (standard comparators)
        genuinely matters for the VLSI application."""
        device = optimal_sorting_network(5)
        faults = enumerate_single_faults(device, kinds=("stuck-swap",))
        full_cube = list(all_binary_words(5))
        testset = sorting_binary_test_set(5)
        assert fault_coverage(device, faults, testset) <= fault_coverage(
            device, faults, full_cube
        )

    def test_coverage_report_breakdown(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        report = coverage_report(four_sorter, faults, sorting_binary_test_set(4))
        assert report.total_faults == len(faults)
        assert 0.0 <= report.coverage <= 1.0
        assert sum(total for _, total in report.by_kind.values()) == len(faults)

    def test_empty_fault_list_gives_full_coverage(self, four_sorter):
        assert fault_coverage(four_sorter, [], [(0, 1, 1, 0)]) == 1.0

    def test_greedy_selection_reaches_full_coverage_with_few_vectors(self):
        device = batcher_sorting_network(6)
        faults = enumerate_single_faults(device, kinds=("stuck-pass", "reversed"))
        candidates = sorting_binary_test_set(6)
        selected = greedy_test_selection(device, faults, candidates)
        assert 0 < len(selected) < len(candidates)
        assert fault_coverage(device, faults, selected) == fault_coverage(
            device, faults, candidates
        )

    def test_greedy_selection_bad_target(self, four_sorter):
        with pytest.raises(FaultModelError):
            greedy_test_selection(four_sorter, [], [], target_coverage=0.0)

    def test_compare_test_sets_returns_one_report_per_set(self, four_sorter):
        faults = enumerate_single_faults(four_sorter)
        reports = compare_test_sets(
            four_sorter,
            faults,
            {"paper": sorting_binary_test_set(4), "tiny": [(1, 0, 0, 0)]},
        )
        assert set(reports) == {"paper", "tiny"}
        assert reports["paper"].coverage >= reports["tiny"].coverage


# ----------------------------------------------------------------------
# Differential oracles: brute-force injection vs the optimised simulators
# ----------------------------------------------------------------------
def brute_force_matrix(network, faults, vectors, criterion):
    """Detection matrix by literal fault injection — the trusted oracle.

    Applies ``fault.apply_to(network)`` to the whole batch with the plain
    evaluator: no bit planes, no pruning, no prefix sharing, no cache.
    """
    batch = np.asarray(vectors)
    clean = apply_network_to_batch(network, batch)
    rows = np.zeros((len(faults), batch.shape[0]), dtype=bool)
    for i, fault in enumerate(faults):
        out = apply_network_to_batch(fault.apply_to(network), batch)
        if criterion == "specification":
            rows[i] = ~batch_is_sorted(out)
        else:
            rows[i] = np.any(out != clean, axis=1)
    return rows


class TestDifferentialOracles:
    @given(networks(min_lines=2, max_lines=6, max_size=8), st.data())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_registered_models_match_brute_force(self, network, data):
        """Every registered model: pruned, streamed and warm-cache paths
        reproduce the injection oracle bit for bit, counters included."""
        name, faults = data.draw(fault_universes(network), label="universe")
        if not faults:
            return
        criterion = data.draw(criteria, label="criterion")
        chunk = data.draw(odd_chunks, label="chunk")
        vectors = all_binary_words_array(network.n_lines)
        expected = brute_force_matrix(network, faults, vectors, criterion)
        pruned = fault_detection_matrix(
            network, faults, vectors, criterion=criterion,
            engine="bitpacked", prune=True,
        )
        assert np.array_equal(pruned, expected), name
        streamed = fault_detection_matrix(
            network, faults, CubeVectors(network.n_lines),
            criterion=criterion, engine="bitpacked",
            config=ExecutionConfig(max_workers=1, chunk_size=chunk),
        )
        assert np.array_equal(streamed, expected), name
        with api.Session(engine="bitpacked", chunk_size=chunk, cache=True) as s:
            fill = s.fault_matrix(network, faults, vectors, criterion=criterion)
            warm = s.fault_matrix(network, faults, vectors, criterion=criterion)
        assert np.array_equal(fill.matrix, expected), name
        assert np.array_equal(warm.matrix, expected), name
        # Verdict replay restores the recorded counters exactly.
        assert warm.stats.counts() == fill.stats.counts()

    def test_every_model_on_a_real_shard_pool(self):
        """Deterministic end-to-end: each registered universe on batcher(5),
        2-process (faults × vector-chunks) grid vs the injection oracle,
        with the same chunking serial run agreeing counter for counter."""
        network = batcher_sorting_network(5)
        vectors = all_binary_words_array(5)
        with api.Session(engine="bitpacked", workers=2, chunk_size=16) as s:
            for name in fault_model_names():
                faults = enumerate_model_faults(network, name)
                expected = brute_force_matrix(
                    network, faults, vectors, "specification"
                )
                sharded = s.fault_matrix(network, faults, vectors)
                assert np.array_equal(sharded.matrix, expected), name
                serial_stats = SimulationStats()
                serial = fault_detection_matrix(
                    network, faults, vectors, engine="bitpacked",
                    config=ExecutionConfig(max_workers=1, chunk_size=16),
                    stats=serial_stats,
                )
                assert np.array_equal(serial, expected), name
                assert sharded.stats.counts() == serial_stats.counts(), name

    def test_k2_multi_faults_match_brute_force(self):
        """The k=2 composite product space (post dominance pruning) stays
        pinned to the oracle under both criteria."""
        network = batcher_sorting_network(4)
        composites = enumerate_multi_faults(network, k=2)
        assert composites
        vectors = all_binary_words_array(4)
        for criterion in ("specification", "reference"):
            expected = brute_force_matrix(network, composites, vectors, criterion)
            actual = fault_detection_matrix(
                network, composites, vectors,
                criterion=criterion, engine="bitpacked",
            )
            assert np.array_equal(actual, expected), criterion

    def test_dominance_pruning_only_drops_duplicate_behaviour(self):
        """Every pruned composite behaves exactly like the clean device, a
        base fault or an earlier composite on the full cube."""
        network = batcher_sorting_network(4)
        base = enumerate_single_faults(
            network, kinds=("stuck-pass", "stuck-swap", "reversed")
        )
        everything = enumerate_multi_faults(
            network, base, k=2, prune_dominated=False
        )
        kept = enumerate_multi_faults(network, base, k=2, prune_dominated=True)
        assert len(kept) < len(everything)
        cube = all_binary_words_array(4)
        clean = apply_network_to_batch(network, cube).tobytes()
        seen = {clean}
        for fault in base:
            seen.add(apply_network_to_batch(fault.apply_to(network), cube).tobytes())
        survivors = set()
        for composite in everything:
            signature = apply_network_to_batch(
                composite.apply_to(network), cube
            ).tobytes()
            if signature not in seen:
                survivors.add(signature)
                seen.add(signature)
        assert len(kept) == len(survivors)
