"""Hypothesis round trips for the :mod:`repro.api` wire format.

Every result dataclass (and :class:`~repro.api.ExecutionInfo`) must
survive ``to_json`` → ``from_json`` → ``to_json`` *bit-identically* —
the serialised text is the dedup / replay currency of :mod:`repro.serve`,
so "almost equal" is a wire-protocol bug.  The strategies below generate
synthetic results (random fault zoos including composites, random
bit-packed matrices, random counters and span trees) rather than running
sessions, so the property is exercised far outside what live runs
produce; a session-driven integration round trip pins the realistic
shape too.
"""

from __future__ import annotations

import dataclasses
import itertools

from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp
import numpy as np
import pytest

from repro.api import Session
from repro.api.results import (
    CoverageReport,
    DiagnosisResult,
    ExecutionInfo,
    FaultMatrixResult,
    TestSetResult,
    VerificationResult,
)
from repro.api.serialize import (
    fault_from_dict,
    fault_to_dict,
    matrix_from_dict,
    matrix_to_dict,
    result_from_dict,
)
from repro.cache.store import CacheStats
from repro.constructions import batcher_sorting_network
from repro.exceptions import SerializationError
from repro.faults.diagnosis import DiagnosticResolution, FaultDictionary
from repro.faults.injection import enumerate_single_faults
from repro.faults.models import (
    BridgingFault,
    IntermittentFault,
    LineStuckFault,
    MultiFault,
    ReversedComparatorFault,
    StuckPassFault,
    StuckSwapFault,
)
from repro.faults.simulation import CubeVectors, SimulationStats
from repro.observe import Trace

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_COMPARATOR_FAULTS = (StuckPassFault, StuckSwapFault, ReversedComparatorFault)

leaf_faults = st.one_of(
    st.builds(StuckPassFault, st.integers(0, 40)),
    st.builds(StuckSwapFault, st.integers(0, 40)),
    st.builds(ReversedComparatorFault, st.integers(0, 40)),
    st.builds(
        LineStuckFault,
        line=st.integers(0, 15),
        value=st.integers(0, 1),
        stage=st.integers(0, 12),
    ),
    st.builds(
        lambda low, coupling: BridgingFault(low, low + 1, coupling),
        st.integers(0, 14),
        st.sampled_from(("and", "or")),
    ),
)

intermittent_faults = st.builds(
    IntermittentFault,
    base=st.one_of(
        st.builds(StuckPassFault, st.integers(0, 40)),
        st.builds(
            LineStuckFault, line=st.integers(0, 15), value=st.integers(0, 1)
        ),
    ),
    salt=st.integers(1, 255),
)


@st.composite
def multi_faults(draw):
    """A conflict-free :class:`MultiFault` over distinct comparators."""
    indices = draw(
        st.lists(st.integers(0, 40), min_size=1, max_size=4, unique=True)
    )
    classes = draw(
        st.lists(
            st.sampled_from(_COMPARATOR_FAULTS),
            min_size=len(indices),
            max_size=len(indices),
        )
    )
    return MultiFault(
        tuple(cls(index) for cls, index in zip(classes, indices))
    )


any_fault = st.one_of(leaf_faults, intermittent_faults, multi_faults())

bool_matrices = hnp.arrays(
    dtype=bool,
    shape=st.tuples(st.integers(1, 9), st.integers(1, 17)),
)

cache_stats = st.builds(
    CacheStats,
    **{
        field.name: st.integers(0, 10_000)
        for field in dataclasses.fields(CacheStats)
    },
)

sim_stats = st.builds(
    SimulationStats,
    faults=st.integers(0, 10_000),
    converged_faults=st.integers(0, 10_000),
    dropped_faults=st.integers(0, 10_000),
    evaluated_stage_blocks=st.integers(0, 10_000),
    pruned_stage_blocks=st.integers(0, 10_000),
    planned_grid=st.one_of(
        st.none(), st.tuples(st.integers(1, 64), st.integers(1, 64))
    ),
)

_span_names = st.sampled_from(
    ("serve.job", "verify", "fault_matrix", "chunk", "shard")
)


@st.composite
def traces(draw):
    """A small span tree built through the real :class:`Trace` API."""
    trace = Trace()
    with trace.span(draw(_span_names), kind="test") as root:
        root.add_counters({"faults": draw(st.integers(0, 99))})
        for _ in range(draw(st.integers(0, 3))):
            with trace.span(draw(_span_names)):
                pass
    return trace


executions = st.builds(
    ExecutionInfo,
    engine_requested=st.sampled_from(("scalar", "vectorized", "bitpacked")),
    engine_effective=st.sampled_from(("scalar", "vectorized", "bitpacked")),
    workers=st.integers(1, 16),
    chunk_words=st.one_of(st.none(), st.integers(1, 1 << 20)),
    grid_shape=st.one_of(
        st.none(), st.tuples(st.integers(1, 64), st.integers(1, 64))
    ),
    seconds=st.floats(0, 1e6, allow_nan=False),
    cache=st.one_of(st.none(), cache_stats),
    trace=st.one_of(st.none(), traces()),
)

resolutions = st.builds(
    DiagnosticResolution,
    num_faults=st.integers(0, 500),
    num_classes=st.integers(0, 500),
    singleton_classes=st.integers(0, 500),
    max_class_size=st.integers(0, 500),
    undetected_faults=st.integers(0, 500),
    resolution=st.floats(0, 1, allow_nan=False),
)

verifications = st.builds(
    VerificationResult,
    verdict=st.booleans(),
    property_name=st.sampled_from(("sorter", "selector", "merger")),
    strategy=st.sampled_from(("testset", "zero-one")),
    k=st.one_of(st.none(), st.integers(1, 16)),
    n_lines=st.integers(1, 32),
    execution=executions,
)

test_set_results = st.builds(
    TestSetResult,
    passed=st.booleans(),
    vectors_used=st.integers(0, 1 << 24),
    n_lines=st.integers(1, 32),
    execution=executions,
)

matrix_results = st.builds(
    lambda matrix, criterion, stats, execution: FaultMatrixResult(
        matrix=matrix,
        criterion=criterion,
        num_faults=matrix.shape[0],
        num_vectors=matrix.shape[1],
        stats=stats,
        execution=execution,
    ),
    bool_matrices,
    st.sampled_from(("specification", "reference")),
    sim_stats,
    executions,
)

by_kinds = st.dictionaries(
    st.sampled_from(
        ("StuckPassFault", "StuckSwapFault", "BridgingFault", "MultiFault")
    ),
    st.tuples(st.integers(0, 99), st.integers(0, 99)),
    max_size=4,
)

coverage_reports = st.builds(
    CoverageReport,
    total_faults=st.integers(0, 2000),
    detected_faults=st.integers(0, 2000),
    coverage=st.floats(0, 1, allow_nan=False),
    by_kind=by_kinds,
    vectors_used=st.integers(0, 1 << 24),
    criterion=st.sampled_from(("specification", "reference")),
    stats=sim_stats,
    execution=executions,
    resolution=st.one_of(st.none(), resolutions),
)


@st.composite
def dictionaries(draw):
    """A :class:`FaultDictionary` with random signatures and classes."""
    classes = draw(
        st.lists(
            st.lists(any_fault, min_size=1, max_size=3).map(tuple),
            min_size=1,
            max_size=4,
        ).map(tuple)
    )
    signatures = tuple(
        draw(st.binary(min_size=1, max_size=8)) for _ in classes
    )
    return FaultDictionary(
        signatures=signatures,
        classes=classes,
        num_vectors=draw(st.integers(1, 1 << 16)),
        criterion=draw(st.sampled_from(("specification", "reference"))),
    )


diagnosis_results = st.builds(
    DiagnosisResult,
    dictionary=dictionaries(),
    resolution=resolutions,
    test_order=st.lists(st.integers(0, 1 << 16), max_size=8).map(tuple),
    coverage=coverage_reports,
    criterion=st.sampled_from(("specification", "reference")),
    num_faults=st.integers(0, 2000),
    num_vectors=st.integers(0, 1 << 16),
    stats=sim_stats,
    execution=executions,
)


# ----------------------------------------------------------------------
# The round-trip property, per type
# ----------------------------------------------------------------------
def assert_bit_stable(result):
    """``to_json`` → ``from_json`` → ``to_json`` is the identity on text."""
    text = result.to_json()
    rebuilt = type(result).from_json(text)
    assert rebuilt.to_json() == text
    return rebuilt


@given(executions)
def test_execution_info_round_trip(info):
    rebuilt = assert_bit_stable(info)
    assert rebuilt.engine_requested == info.engine_requested
    assert rebuilt.grid_shape == info.grid_shape
    assert rebuilt.seconds == info.seconds
    assert rebuilt.cache == info.cache
    if info.trace is None:
        assert rebuilt.trace is None
    else:
        assert rebuilt.trace.to_json() == info.trace.to_json()


@given(verifications)
def test_verification_round_trip(result):
    rebuilt = assert_bit_stable(result)
    assert rebuilt.verdict == result.verdict
    assert rebuilt.k == result.k
    assert bool(rebuilt) == bool(result)


@given(test_set_results)
def test_test_set_round_trip(result):
    rebuilt = assert_bit_stable(result)
    assert rebuilt.passed == result.passed
    assert rebuilt.vectors_used == result.vectors_used


@settings(deadline=None)
@given(matrix_results)
def test_fault_matrix_round_trip(result):
    rebuilt = assert_bit_stable(result)
    assert np.array_equal(rebuilt.matrix, result.matrix)
    assert rebuilt.matrix.dtype == np.dtype(bool)
    assert rebuilt.stats == result.stats
    assert rebuilt.stats.planned_grid == result.stats.planned_grid


@given(coverage_reports)
def test_coverage_round_trip(result):
    rebuilt = assert_bit_stable(result)
    assert dict(rebuilt.by_kind) == dict(result.by_kind)
    assert rebuilt.resolution == result.resolution
    assert rebuilt.coverage == result.coverage


@settings(deadline=None)
@given(diagnosis_results)
def test_diagnosis_round_trip(result):
    rebuilt = assert_bit_stable(result)
    assert rebuilt.dictionary.signatures == result.dictionary.signatures
    assert rebuilt.dictionary.classes == result.dictionary.classes
    assert rebuilt.test_order == result.test_order


@given(any_fault)
def test_fault_round_trip(fault):
    payload = fault_to_dict(fault)
    assert fault_from_dict(payload) == fault


@settings(deadline=None)
@given(bool_matrices)
def test_matrix_packing_is_bit_exact(matrix):
    rebuilt = matrix_from_dict(matrix_to_dict(matrix))
    assert rebuilt.shape == matrix.shape
    assert np.array_equal(rebuilt, matrix)


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_wrong_type_tag_is_refused():
    info = ExecutionInfo(
        engine_requested="scalar",
        engine_effective="scalar",
        workers=1,
        chunk_words=None,
        grid_shape=None,
        seconds=0.0,
    )
    result = TestSetResult(
        passed=True, vectors_used=4, n_lines=2, execution=info
    )
    with pytest.raises(SerializationError):
        VerificationResult.from_json(result.to_json())


def test_unknown_payload_type_is_refused():
    with pytest.raises(SerializationError):
        result_from_dict({"type": "no-such-result"})


def test_unknown_fault_model_is_refused():
    with pytest.raises(SerializationError):
        fault_from_dict({"model": "NoSuchFault", "fields": {}})


# ----------------------------------------------------------------------
# Session integration: live payloads round-trip too
# ----------------------------------------------------------------------
def test_session_results_round_trip():
    network = batcher_sorting_network(6)
    session = Session(engine="bitpacked", cache=True)
    faults = enumerate_single_faults(network)
    vectors = CubeVectors(6)
    words = [list(w) for w in itertools.product((0, 1), repeat=6)]

    results = [
        session.verify(network),
        session.passes_test_set(network, words),
        session.fault_matrix(network, faults, vectors),
        session.fault_coverage(network, faults, vectors),
        session.diagnose(network, faults, vectors),
    ]
    for result in results:
        rebuilt = assert_bit_stable(result)
        assert rebuilt.execution.engine_effective == "bitpacked"
    matrix_result = results[2]
    rebuilt_matrix = FaultMatrixResult.from_json(matrix_result.to_json())
    assert np.array_equal(rebuilt_matrix.matrix, matrix_result.matrix)
